package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFilePagerBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.cbb")
	p, err := CreateFilePager(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if p.PageSize() != 256 {
		t.Fatalf("page size %d", p.PageSize())
	}
	id1, err := p.Allocate(KindDirectory)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := p.Allocate(KindLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids %d %d, want 1 2", id1, id2)
	}
	if err := p.Write(id1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(id2, bytes.Repeat([]byte{7}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(id2, bytes.Repeat([]byte{7}, 257)); err == nil {
		t.Error("oversized payload must be rejected")
	}
	buf, kind, err := p.Read(id1)
	if err != nil || kind != KindDirectory || string(buf) != "hello" {
		t.Fatalf("read %q %v %v", buf, kind, err)
	}
	u := p.Usage()
	if u.TotalPages != 2 || u.Bytes[KindDirectory] != 5 || u.Bytes[KindLeaf] != 256 {
		t.Fatalf("usage %+v", u)
	}
	reads, writes := p.DiskStats()
	if reads == 0 || writes == 0 {
		t.Fatalf("disk stats %d/%d should move", reads, writes)
	}

	// Free + reuse.
	if err := p.Free(id1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Read(id1); err == nil {
		t.Error("read of freed page must fail")
	}
	id3, err := p.Allocate(KindAux)
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Fatalf("freed slot not reused: got %d", id3)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := p.Allocate(KindLeaf); err == nil {
		t.Error("allocate after close must fail")
	}

	// Reopen: directory, free list, and content survive.
	q, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	buf, kind, err = q.Read(id2)
	if err != nil || kind != KindLeaf || len(buf) != 256 || buf[0] != 7 {
		t.Fatalf("reopened read %d bytes %v %v", len(buf), kind, err)
	}
	if _, _, err := q.Read(99); err == nil {
		t.Error("read of nonexistent page must fail")
	}
}

func TestFilePagerReadOnlyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.cbb")
	p, err := CreateFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate(KindLeaf)
	if err := p.Write(id, []byte("shipped read-only")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(path, 0o444); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	q, err := OpenFilePager(path)
	if err != nil {
		t.Fatalf("read-only snapshot must open: %v", err)
	}
	if !q.readonly {
		// Root ignores file modes, so O_RDWR succeeded; force the
		// read-only code path directly — it is what a non-root process
		// gets for a 0444 file.
		q.readonly = true
	}
	buf, kind, err := q.Read(id)
	if err != nil || kind != KindLeaf || string(buf) != "shipped read-only" {
		t.Fatalf("read-only read: %q %v %v", buf, kind, err)
	}
	if _, err := q.Allocate(KindAux); err != ErrReadOnlyFS {
		t.Fatalf("Allocate on read-only file: %v, want ErrReadOnlyFS", err)
	}
	if err := q.Write(id, []byte("x")); err != ErrReadOnlyFS {
		t.Fatalf("Write on read-only file: %v, want ErrReadOnlyFS", err)
	}
	if err := q.Free(id); err != ErrReadOnlyFS {
		t.Fatalf("Free on read-only file: %v, want ErrReadOnlyFS", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("read-only close: %v", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("opening a read-only snapshot modified the file")
	}
}

func TestFilePagerDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.cbb")
	p, err := CreateFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate(KindLeaf)
	if err := p.Write(id, []byte("payload under checksum")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[fileHeaderBytes+slotHeaderBytes+3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, _, err := q.Read(id); err == nil {
		t.Fatal("corrupted payload must fail the checksum")
	}
	// Corrupt the file header too: open must fail outright.
	raw[9] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFilePager(path); err == nil {
		t.Fatal("corrupted header must be rejected")
	}
}

func TestPagerStreamRoundTrip(t *testing.T) {
	p := NewPager(128)
	id1, _ := p.Allocate(KindDirectory)
	id2, _ := p.Allocate(KindLeaf)
	id3, _ := p.Allocate(KindAux)
	p.Write(id1, []byte("dir"))
	p.Write(id2, []byte("leaf"))
	p.Write(id3, []byte("aux"))
	if err := p.Free(id2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPagerFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q.PageSize() != 128 {
		t.Fatalf("page size %d", q.PageSize())
	}
	got, kind, err := q.Read(id1)
	if err != nil || kind != KindDirectory || string(got) != "dir" {
		t.Fatalf("page 1: %q %v %v", got, kind, err)
	}
	if _, _, err := q.Read(id2); err == nil {
		t.Error("freed page must stay free after the round trip")
	}
	got, kind, err = q.Read(id3)
	if err != nil || kind != KindAux || string(got) != "aux" {
		t.Fatalf("page 3: %q %v %v", got, kind, err)
	}
	// A new allocation must not collide with existing ids.
	id4, err := q.Allocate(KindLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if id4 != 4 {
		t.Fatalf("allocation after round trip got id %d, want 4", id4)
	}

	// Truncated and corrupted streams are rejected.
	raw := buf.Bytes()
	if _, err := ReadPagerFrom(bytes.NewReader(raw[:len(raw)-7])); err == nil {
		t.Error("truncated stream must be rejected")
	}
	bad := append([]byte(nil), raw...)
	bad[fileHeaderBytes+slotHeaderBytes] ^= 0xff
	if _, err := ReadPagerFrom(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload must be rejected")
	}
}

func TestFilePagerMatchesStreamFormat(t *testing.T) {
	// Bytes written by a FilePager are readable with ReadPagerFrom and vice
	// versa: the two paths share one format.
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.cbb")
	fp, err := CreateFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := fp.Allocate(KindLeaf)
	fp.Write(id, []byte("shared format"))
	if err := fp.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := ReadPagerFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := mem.Read(id)
	if err != nil || string(got) != "shared format" {
		t.Fatalf("stream read of file bytes: %q %v", got, err)
	}

	var buf bytes.Buffer
	if _, err := mem.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, "pages2.cbb")
	if err := os.WriteFile(path2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := OpenFilePager(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	got, _, err = fp2.Read(id)
	if err != nil || string(got) != "shared format" {
		t.Fatalf("file read of stream bytes: %q %v", got, err)
	}
}
