package parallel

import (
	"math/rand"
	"sort"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

func buildTree(t *testing.T, n int) (*rtree.Tree, []geom.Rect) {
	t.Helper()
	tr := rtree.MustNew(rtree.DefaultConfig(2, rtree.RStar))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		w, h := rng.Float64()*5, rng.Float64()*5
		if _, err := tr.Insert(geom.R(x, y, x+w, y+h), rtree.ObjectID(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	queries := make([]geom.Rect, 200)
	for i := range queries {
		x, y := rng.Float64()*950, rng.Float64()*950
		s := 5 + rng.Float64()*45
		queries[i] = geom.R(x, y, x+s, y+s)
	}
	return tr, queries
}

func sequentialBaseline(tr *rtree.Tree, queries []geom.Rect) ([]int, storage.Snapshot) {
	var c storage.Counter
	counts := make([]int, len(queries))
	for i, q := range queries {
		tr.SearchCounted(q, &c, func(rtree.ObjectID, geom.Rect) bool {
			counts[i]++
			return true
		})
	}
	return counts, c.Snapshot()
}

func TestRunBatchMatchesSequential(t *testing.T) {
	tr, queries := buildTree(t, 3000)
	wantCounts, wantIO := sequentialBaseline(tr, queries)

	for _, workers := range []int{1, 2, 4, 7} {
		res := RunBatch(tr, queries, Options{Workers: workers})
		if got, want := res.Workers, workers; got != want {
			t.Fatalf("workers=%d: used %d workers", want, got)
		}
		for i := range wantCounts {
			if res.Counts[i] != wantCounts[i] {
				t.Fatalf("workers=%d: query %d count %d, sequential %d", workers, i, res.Counts[i], wantCounts[i])
			}
		}
		if res.IO != wantIO {
			t.Fatalf("workers=%d: IO %+v, sequential %+v", workers, res.IO, wantIO)
		}
		var sum storage.Snapshot
		for _, s := range res.PerWorker {
			sum = sum.Add(s)
		}
		if sum != res.IO {
			t.Fatalf("workers=%d: per-worker snapshots sum to %+v, total %+v", workers, sum, res.IO)
		}
	}
}

func TestRunBatchClipped(t *testing.T) {
	tr, queries := buildTree(t, 3000)
	idx, err := clipindex.New(tr, core.Params{K: 8, Tau: 0.025, Method: core.MethodStairline})
	if err != nil {
		t.Fatalf("clipindex: %v", err)
	}
	var c storage.Counter
	want := make([]int, len(queries))
	for i, q := range queries {
		idx.SearchCounted(q, &c, func(rtree.ObjectID, geom.Rect) bool {
			want[i]++
			return true
		})
	}
	res := RunBatch(idx, queries, Options{Workers: 4})
	for i := range want {
		if res.Counts[i] != want[i] {
			t.Fatalf("query %d: clipped parallel count %d, sequential %d", i, res.Counts[i], want[i])
		}
	}
	if res.IO != c.Snapshot() {
		t.Fatalf("clipped IO %+v, sequential %+v", res.IO, c.Snapshot())
	}
}

func TestRunBatchCollect(t *testing.T) {
	tr, queries := buildTree(t, 1000)
	res := RunBatch(tr, queries, Options{Workers: 4, Collect: true})
	for i, q := range queries {
		var want []rtree.Item
		tr.SearchCounted(q, &storage.Counter{}, func(id rtree.ObjectID, r geom.Rect) bool {
			want = append(want, rtree.Item{Object: id, Rect: r})
			return true
		})
		got := append([]rtree.Item(nil), res.Items[i]...)
		sort.Slice(got, func(a, b int) bool { return got[a].Object < got[b].Object })
		sort.Slice(want, func(a, b int) bool { return want[a].Object < want[b].Object })
		if len(got) != len(want) {
			t.Fatalf("query %d: %d items, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k].Object != want[k].Object {
				t.Fatalf("query %d item %d: object %d, want %d", i, k, got[k].Object, want[k].Object)
			}
		}
		if res.Counts[i] != len(want) {
			t.Fatalf("query %d: count %d, items %d", i, res.Counts[i], len(want))
		}
	}
}

func TestRunBatchMain(t *testing.T) {
	tr, queries := buildTree(t, 1000)
	var main storage.Counter
	res := RunBatch(tr, queries, Options{Workers: 3, Main: &main})
	if main.Snapshot() != res.IO {
		t.Fatalf("main counter %+v, batch IO %+v", main.Snapshot(), res.IO)
	}
}

func TestRunBatchEdgeCases(t *testing.T) {
	tr, queries := buildTree(t, 100)
	res := RunBatch(tr, nil, Options{Workers: 4})
	if len(res.Counts) != 0 || res.IO != (storage.Snapshot{}) {
		t.Fatalf("empty batch: %+v", res)
	}
	// More workers than queries clamps.
	res = RunBatch(tr, queries[:3], Options{Workers: 64})
	if res.Workers != 3 {
		t.Fatalf("expected clamp to 3 workers, got %d", res.Workers)
	}
	if res.TotalResults() < 0 {
		t.Fatalf("negative total")
	}
}
