// Package parallel provides a worker-pool batch executor for range queries.
// The paper's evaluation (and the seed reproduction) runs every query on a
// single goroutine; this package fans a query batch out over N goroutines
// while keeping the simulated I/O accounting exact.
//
// Exactness is achieved by giving every worker a private storage.Counter:
// each worker charges its own node accesses, the per-worker snapshots are
// merged into one total after the batch, and the merged total is folded back
// into the shared tree counter. The result — counts, items, and I/O — is
// deterministic and identical to a sequential run of the same batch,
// regardless of how the scheduler interleaves the workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Searcher is the read-only range-query surface the executor fans out.
// Both *rtree.Tree and *clipindex.Index implement it; implementations must
// be safe for concurrent readers.
type Searcher interface {
	SearchCounted(q geom.Rect, c *storage.Counter, visit func(rtree.ObjectID, geom.Rect) bool)
}

// Options configures a batch run.
type Options struct {
	// Workers is the number of goroutines; <= 0 uses GOMAXPROCS. The
	// effective count is additionally clamped to the number of queries.
	Workers int
	// Collect gathers the matching items of every query (Result.Items)
	// instead of only counting them.
	Collect bool
	// Main, when non-nil, receives the merged batch I/O after the batch
	// completes, so a shared tree counter accumulates exactly what a
	// sequential run of the same batch would have charged it.
	Main *storage.Counter
}

// Result is the outcome of a batch: per-query results index-aligned with the
// input, plus exact I/O accounting.
type Result struct {
	// Counts holds the number of matches of each query.
	Counts []int
	// Items holds the matches of each query (nil unless Options.Collect).
	// Within one query the order follows that query's own tree traversal,
	// so it equals the sequential order.
	Items [][]rtree.Item
	// IO is the merged I/O of the whole batch (sum of PerWorker).
	IO storage.Snapshot
	// PerWorker holds each worker's private I/O snapshot.
	PerWorker []storage.Snapshot
	// Workers is the number of goroutines actually used.
	Workers int
}

// paddedCounter keeps each worker's counter on its own cache line (and away
// from the adjacent-line prefetcher) so the workers' per-node-access atomic
// updates never false-share.
type paddedCounter struct {
	c storage.Counter
	_ [12]int64
}

// EffectiveWorkers resolves a requested worker count against n work items:
// <= 0 means GOMAXPROCS, and the count never exceeds n. ForEachChunk applies
// it internally; callers that need the effective count up front (result
// reporting, lock-elision decisions) use it to stay in sync with the
// scheduling.
func EffectiveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEachChunk fans the index range [0, n) out over a pool of worker
// goroutines and returns the per-worker I/O snapshots (length = effective
// worker count, nil when n == 0). Indices are handed out in contiguous
// chunks through an atomic cursor — small enough grabs to balance skewed
// per-index costs, large enough to keep cursor contention negligible. fn is
// called with the worker's id, a half-open index range [start, end), and the
// worker's private counter; workers <= 0 uses GOMAXPROCS, and the count is
// clamped to n. Both RunBatch and the parallel joins schedule through here,
// so chunking and I/O-exactness fixes stay in one place.
func ForEachChunk(n, workers int, fn func(worker, start, end int, c *storage.Counter)) []storage.Snapshot {
	workers = EffectiveWorkers(workers, n)
	if n == 0 {
		return nil
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor int64
	counters := make([]paddedCounter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &counters[w].c
			for {
				start := int(atomic.AddInt64(&cursor, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				fn(w, start, end, c)
			}
		}(w)
	}
	wg.Wait()
	out := make([]storage.Snapshot, workers)
	for w := range counters {
		out[w] = counters[w].c.Snapshot()
	}
	return out
}

// RunBatch executes every query against s using a pool of worker
// goroutines. Queries are handed out in contiguous chunks through an atomic
// cursor, so skewed query costs still balance across workers.
func RunBatch(s Searcher, queries []geom.Rect, opts Options) Result {
	workers := EffectiveWorkers(opts.Workers, len(queries))
	res := Result{Counts: make([]int, len(queries)), Workers: workers}
	if opts.Collect {
		res.Items = make([][]rtree.Item, len(queries))
	}
	if len(queries) == 0 {
		return res
	}

	res.PerWorker = ForEachChunk(len(queries), workers, func(_, start, end int, c *storage.Counter) {
		for i := start; i < end; i++ {
			n := 0
			if opts.Collect {
				var items []rtree.Item
				s.SearchCounted(queries[i], c, func(id rtree.ObjectID, r geom.Rect) bool {
					items = append(items, rtree.Item{Object: id, Rect: r})
					n++
					return true
				})
				res.Items[i] = items
			} else {
				s.SearchCounted(queries[i], c, func(rtree.ObjectID, geom.Rect) bool {
					n++
					return true
				})
			}
			res.Counts[i] = n
		}
	})
	for _, s := range res.PerWorker {
		res.IO = res.IO.Add(s)
	}
	if opts.Main != nil {
		opts.Main.Add(res.IO)
	}
	return res
}

// TotalResults returns the sum of all per-query counts.
func (r Result) TotalResults() int64 {
	var n int64
	for _, c := range r.Counts {
		n += int64(c)
	}
	return n
}
