package bounding

import (
	"math/rand"

	"cbb/internal/geom"
)

// DefaultSamples is the Monte-Carlo sample budget used by the evaluation
// when estimating dead space of a bounding shape.
const DefaultSamples = 4096

// DeadSpaceFraction estimates the fraction of the shape's area that is not
// covered by any of the objects ("dead space", Definition 1 generalised to
// arbitrary bounding shapes), using seeded Monte-Carlo sampling over the
// objects' MBB. It returns a value in [0, 1]; shapes with zero area report
// zero dead space.
func DeadSpaceFraction(s Shape, objects []geom.Rect, samples int, seed int64) float64 {
	if s == nil || len(objects) == 0 || samples <= 0 {
		return 0
	}
	box := geom.MBROf(objects)
	if box.Volume() <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	dims := box.Dims()
	inShape, dead := 0, 0
	p := make(geom.Point, dims)
	for i := 0; i < samples; i++ {
		for d := 0; d < dims; d++ {
			p[d] = box.Lo[d] + rng.Float64()*(box.Hi[d]-box.Lo[d])
		}
		if !s.Contains(p) {
			continue
		}
		inShape++
		covered := false
		for _, o := range objects {
			if o.ContainsPoint(p) {
				covered = true
				break
			}
		}
		if !covered {
			dead++
		}
	}
	// Sampling is restricted to the MBB; shapes larger than the MBB (circle,
	// rotated box) have all of their out-of-MBB area dead by construction.
	// Account for it analytically via the area ratio.
	mbbArea := box.Volume()
	shapeArea := s.Area()
	if inShape == 0 {
		if shapeArea > mbbArea {
			return (shapeArea - mbbArea) / shapeArea
		}
		return 0
	}
	insideFrac := float64(dead) / float64(inShape)
	if shapeArea <= mbbArea || shapeArea == 0 {
		return insideFrac
	}
	insideArea := mbbArea * float64(inShape) / float64(samples)
	outsideArea := shapeArea - insideArea
	if outsideArea < 0 {
		outsideArea = 0
	}
	return (insideFrac*insideArea + outsideArea) / shapeArea
}

// CoverageRatio returns the shape's area divided by the MBB area of the
// objects — how much larger (or smaller, for CBBs) the shape is than the
// baseline MBB.
func CoverageRatio(s Shape, objects []geom.Rect) float64 {
	mbb := geom.MBROf(objects).Volume()
	if mbb == 0 {
		return 0
	}
	return s.Area() / mbb
}

// Comparison is the per-shape outcome of a bounding-method comparison
// (one bar group of Figure 9).
type Comparison struct {
	Name       string
	DeadSpace  float64 // fraction in [0,1]
	PointCount int
	Area       float64
}

// Compare evaluates every shape on the same object set with a shared sample
// budget and seed.
func Compare(shapes []Shape, objects []geom.Rect, samples int, seed int64) []Comparison {
	out := make([]Comparison, 0, len(shapes))
	for _, s := range shapes {
		out = append(out, Comparison{
			Name:       s.Name(),
			DeadSpace:  DeadSpaceFraction(s, objects, samples, seed),
			PointCount: s.PointCount(),
			Area:       s.Area(),
		})
	}
	return out
}
