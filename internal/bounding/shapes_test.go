package bounding

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/core"
	"cbb/internal/geom"
)

// figure3Leaves reproduces the left leaf node of the paper's Figure 3a
// running example: five objects with plenty of corner dead space.
func exampleObjects() []geom.Rect {
	return []geom.Rect{
		geom.R(0, 4, 3, 10),
		geom.R(1, 0, 2, 4),
		geom.R(4, 0, 5, 3),
		geom.R(6, 0, 9, 4),
		geom.R(8, 2, 10, 3),
	}
}

func TestMBBShape(t *testing.T) {
	objs := exampleObjects()
	mbb := NewMBB(objs)
	if mbb.Name() != "MBB" || mbb.PointCount() != 2 {
		t.Error("MBB metadata wrong")
	}
	if mbb.Area() != 100 {
		t.Errorf("MBB area = %g, want 100", mbb.Area())
	}
	if !mbb.Contains(geom.Pt(5, 5)) || mbb.Contains(geom.Pt(11, 5)) {
		t.Error("MBB containment wrong")
	}
}

func TestMBCContainsAllCorners(t *testing.T) {
	objs := exampleObjects()
	mbc := NewMBC(objs)
	if mbc.Name() != "MBC" || mbc.PointCount() != 2 {
		t.Error("MBC metadata wrong")
	}
	for _, o := range objs {
		geom.Corners(2, func(b geom.Corner) {
			if !mbc.Contains(o.Corner(b)) {
				t.Errorf("MBC does not contain corner %v of %v", o.Corner(b), o)
			}
		})
	}
	// Exact MBC of the 10x10 point cloud has radius >= half diagonal of the
	// farthest pair and area >= MBB area * pi/4 is not generally true, but
	// it must be at least the MBB's inscribed circle and at most the circle
	// around the MBB diagonal.
	if mbc.Radius < 5 || mbc.Radius > math.Sqrt(200)/2+1e-9 {
		t.Errorf("MBC radius %g outside plausible range", mbc.Radius)
	}
}

func TestMBCDegenerate(t *testing.T) {
	if c := NewMBC(nil); c.Radius != 0 {
		t.Error("empty MBC should have zero radius")
	}
	single := NewMBC([]geom.Rect{geom.PointRect(geom.Pt(3, 4))})
	if single.Radius != 0 || !single.Contains(geom.Pt(3, 4)) {
		t.Error("single-point MBC wrong")
	}
	// Collinear points must still be enclosed.
	col := NewMBC([]geom.Rect{
		geom.PointRect(geom.Pt(0, 0)), geom.PointRect(geom.Pt(5, 0)), geom.PointRect(geom.Pt(10, 0)),
	})
	for _, x := range []float64{0, 5, 10} {
		if !col.Contains(geom.Pt(x, 0)) {
			t.Errorf("collinear MBC misses (%g,0)", x)
		}
	}
}

func TestMBC3D(t *testing.T) {
	objs := []geom.Rect{geom.R(0, 0, 0, 2, 2, 2), geom.R(8, 8, 8, 10, 10, 10)}
	mbc := NewMBC(objs)
	for _, o := range objs {
		geom.Corners(3, func(b geom.Corner) {
			if !mbc.Contains(o.Corner(b)) {
				t.Errorf("3d ball misses corner %v", o.Corner(b))
			}
		})
	}
	if mbc.Area() <= 0 {
		t.Error("3d ball volume should be positive")
	}
}

func TestConvexHull(t *testing.T) {
	objs := exampleObjects()
	ch := NewConvexHull(objs)
	if ch.Name() != "CH" {
		t.Error("name wrong")
	}
	if len(ch.Vertices) < 4 {
		t.Fatalf("hull has too few vertices: %d", len(ch.Vertices))
	}
	// The hull must contain every object corner and be no larger than the
	// MBB.
	for _, o := range objs {
		geom.Corners(2, func(b geom.Corner) {
			if !ch.Contains(o.Corner(b)) {
				t.Errorf("hull misses corner %v", o.Corner(b))
			}
		})
	}
	if ch.Area() > NewMBB(objs).Area()+1e-9 {
		t.Errorf("hull area %g exceeds MBB area", ch.Area())
	}
	if ch.Area() <= 0 {
		t.Error("hull area should be positive")
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := NewConvexHull(nil); len(h.Vertices) != 0 {
		t.Error("empty hull should have no vertices")
	}
	// A single point or collinear points produce degenerate hulls with zero
	// area and no containment claims.
	line := NewConvexHull([]geom.Rect{
		geom.PointRect(geom.Pt(0, 0)), geom.PointRect(geom.Pt(1, 1)), geom.PointRect(geom.Pt(2, 2)),
	})
	if line.Area() != 0 {
		t.Error("collinear hull should have zero area")
	}
}

func TestRotatedMBB(t *testing.T) {
	// A diagonal strip of points: the rotated MBB should be much smaller
	// than the axis-aligned MBB.
	var objs []geom.Rect
	for i := 0; i < 20; i++ {
		f := float64(i)
		objs = append(objs, geom.R(f, f, f+1, f+1))
	}
	rmbb := NewRotatedMBB(objs)
	mbb := NewMBB(objs)
	if rmbb.Name() != "RMBB" || len(rmbb.Vertices) != 4 {
		t.Fatalf("RMBB metadata wrong: %d vertices", len(rmbb.Vertices))
	}
	if rmbb.Area() >= mbb.Area() {
		t.Errorf("rotated MBB (%g) should beat axis-aligned MBB (%g) on diagonal data", rmbb.Area(), mbb.Area())
	}
	for _, o := range objs {
		geom.Corners(2, func(b geom.Corner) {
			if !rmbb.Contains(o.Corner(b)) {
				t.Errorf("RMBB misses corner %v", o.Corner(b))
			}
		})
	}
}

func TestKCornerPolygon(t *testing.T) {
	objs := exampleObjects()
	ch := NewConvexHull(objs)
	for _, k := range []int{4, 5} {
		poly := NewKCornerPolygon(objs, k)
		if poly.PointCount() > k {
			t.Errorf("%d-C polygon has %d corners", k, poly.PointCount())
		}
		if poly.Area() < ch.Area()-1e-9 {
			t.Errorf("%d-C area %g smaller than hull area %g (cannot bound)", k, poly.Area(), ch.Area())
		}
		// Must still contain every object corner.
		for _, o := range objs {
			geom.Corners(2, func(b geom.Corner) {
				if !poly.Contains(o.Corner(b)) {
					t.Errorf("%d-C polygon misses corner %v", k, o.Corner(b))
				}
			})
		}
	}
	// 4-C can never beat 5-C (more corners = at least as tight).
	p4 := NewKCornerPolygon(objs, 4)
	p5 := NewKCornerPolygon(objs, 5)
	if p5.Area() > p4.Area()+1e-9 {
		t.Errorf("5-C area %g worse than 4-C area %g", p5.Area(), p4.Area())
	}
}

func TestKCornerSmallHull(t *testing.T) {
	// A triangle's hull has 3 corners; asking for 4 returns it unchanged.
	objs := []geom.Rect{
		geom.PointRect(geom.Pt(0, 0)), geom.PointRect(geom.Pt(10, 0)), geom.PointRect(geom.Pt(5, 8)),
	}
	poly := NewKCornerPolygon(objs, 4)
	if len(poly.Vertices) != 3 {
		t.Errorf("expected the hull itself, got %d vertices", len(poly.Vertices))
	}
}

func TestCBBShape(t *testing.T) {
	objs := exampleObjects()
	sky := NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodSkyline})
	sta := NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodStairline})
	if sky.Name() != "CBBSKY" || sta.Name() != "CBBSTA" {
		t.Error("CBB shape names wrong")
	}
	mbbArea := NewMBB(objs).Area()
	if sky.Area() > mbbArea || sta.Area() > mbbArea {
		t.Error("clipping can never increase area")
	}
	if sta.Area() > sky.Area()+1e-9 {
		t.Errorf("CSTA area %g should be <= CSKY area %g", sta.Area(), sky.Area())
	}
	if sky.PointCount() < 2 || sta.PointCount() < sky.PointCount() {
		t.Errorf("point counts implausible: sky=%d sta=%d", sky.PointCount(), sta.PointCount())
	}
	// Object interiors are always contained.
	for _, o := range objs {
		if !sta.Contains(o.Center()) {
			t.Errorf("CBB shape must contain object centre %v", o.Center())
		}
	}
	// Deep corner dead space is excluded by the stairline CBB.
	if sta.Contains(geom.Pt(9.5, 9.5)) {
		t.Error("far corner dead space should be clipped away")
	}
}

func TestDeadSpaceFractionOrdering(t *testing.T) {
	// Figure 8's qualitative ordering on the running example: MBC has the
	// most dead space, MBB is next, the convex hull improves on the MBB, and
	// the stairline CBB beats the skyline CBB.
	objs := exampleObjects()
	shapes := map[string]Shape{
		"MBC": NewMBC(objs),
		"MBB": NewMBB(objs),
		"CH":  NewConvexHull(objs),
		"SKY": NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodSkyline}),
		"STA": NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodStairline}),
	}
	dead := make(map[string]float64)
	for name, s := range shapes {
		dead[name] = DeadSpaceFraction(s, objs, 20000, 1)
	}
	if dead["MBC"] < dead["MBB"] {
		t.Errorf("MBC dead space (%.2f) should exceed MBB (%.2f)", dead["MBC"], dead["MBB"])
	}
	if dead["CH"] > dead["MBB"]+0.02 {
		t.Errorf("CH dead space (%.2f) should not exceed MBB (%.2f)", dead["CH"], dead["MBB"])
	}
	if dead["STA"] > dead["SKY"]+0.02 {
		t.Errorf("CSTA dead space (%.2f) should not exceed CSKY (%.2f)", dead["STA"], dead["SKY"])
	}
	if dead["STA"] > dead["MBB"] {
		t.Errorf("CSTA dead space (%.2f) should be below MBB (%.2f)", dead["STA"], dead["MBB"])
	}
}

func TestDeadSpaceEdgeCases(t *testing.T) {
	objs := exampleObjects()
	if DeadSpaceFraction(nil, objs, 100, 1) != 0 {
		t.Error("nil shape should report 0")
	}
	if DeadSpaceFraction(NewMBB(objs), nil, 100, 1) != 0 {
		t.Error("no objects should report 0")
	}
	if DeadSpaceFraction(NewMBB(objs), objs, 0, 1) != 0 {
		t.Error("no samples should report 0")
	}
	// A single object exactly filling its MBB has no dead space.
	solid := []geom.Rect{geom.R(0, 0, 10, 10)}
	if d := DeadSpaceFraction(NewMBB(solid), solid, 2000, 1); d != 0 {
		t.Errorf("solid object dead space = %g, want 0", d)
	}
}

func TestCoverageRatio(t *testing.T) {
	objs := exampleObjects()
	if r := CoverageRatio(NewMBB(objs), objs); math.Abs(r-1) > 1e-9 {
		t.Errorf("MBB coverage ratio = %g, want 1", r)
	}
	if r := CoverageRatio(NewMBC(objs), objs); r <= 1 {
		t.Errorf("MBC coverage ratio should exceed 1, got %g", r)
	}
	sta := NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodStairline})
	if r := CoverageRatio(sta, objs); r >= 1 {
		t.Errorf("CSTA coverage ratio should be below 1, got %g", r)
	}
	if CoverageRatio(NewMBB(nil), nil) != 0 {
		t.Error("empty objects should report 0")
	}
}

func TestCompare(t *testing.T) {
	objs := exampleObjects()
	shapes := []Shape{NewMBC(objs), NewMBB(objs), NewConvexHull(objs)}
	cmp := Compare(shapes, objs, 2000, 7)
	if len(cmp) != 3 {
		t.Fatalf("Compare returned %d results", len(cmp))
	}
	for _, c := range cmp {
		if c.Name == "" || c.Area <= 0 || c.DeadSpace < 0 || c.DeadSpace > 1 {
			t.Errorf("implausible comparison entry %+v", c)
		}
	}
}

// Property: on random object sets, every bounding shape contains every
// object corner (the defining property of a conservative approximation).
func TestAllShapesAreConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		var objs []geom.Rect
		n := 3 + rng.Intn(20)
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			objs = append(objs, geom.R(x, y, x+rng.Float64()*20, y+rng.Float64()*20))
		}
		shapes := []Shape{
			NewMBB(objs), NewMBC(objs), NewConvexHull(objs), NewRotatedMBB(objs),
			NewKCornerPolygon(objs, 4), NewKCornerPolygon(objs, 5),
			NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodSkyline}),
			NewCBBShape(objs, core.Params{K: 8, Tau: 0, Method: core.MethodStairline}),
		}
		for _, s := range shapes {
			for _, o := range objs {
				// Object centres must always be inside (corners may touch
				// polygon boundaries within floating-point noise, so centres
				// are the robust check; CBBs additionally guarantee corners).
				if !s.Contains(o.Center()) {
					t.Fatalf("%s does not contain centre of %v", s.Name(), o)
				}
			}
		}
	}
}

func BenchmarkWelzlMBC(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var objs []geom.Rect
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		objs = append(objs, geom.R(x, y, x+10, y+10))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewMBC(objs)
	}
}

func BenchmarkDeadSpaceEstimation(b *testing.B) {
	objs := exampleObjects()
	s := NewCBBShape(objs, core.DefaultParams(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DeadSpaceFraction(s, objs, 1024, int64(i))
	}
}
