// Package bounding implements the alternative bounding geometries the paper
// compares clipped bounding boxes against in Figures 8 and 9: the minimum
// bounding box (MBB), minimum bounding circle (MBC, Welzl's algorithm), the
// rotated minimum bounding box (RMBB), m-corner convex polygons (4-C, 5-C),
// the convex hull (CH), and the two CBB variants, together with a
// Monte-Carlo dead-space estimator that works uniformly across all of them.
//
// The polygonal shapes are two-dimensional, as in the paper ("we restrict to
// 2d datasets, as we know of no way to calculate minimum bounding m-corner
// polytopes in higher dimensions"); MBB, MBC and CBB generalise to any
// dimensionality.
package bounding

import (
	"fmt"
	"math"

	"cbb/internal/core"
	"cbb/internal/geom"
)

// Shape is a bounding geometry: it must report its area (volume), whether a
// point lies inside it, and its representation cost in points (the x-axis of
// Figure 9b).
type Shape interface {
	// Name returns the figure label of the shape ("MBB", "CH", ...).
	Name() string
	// Area returns the area (2d) or volume (3d) covered by the shape.
	Area() float64
	// Contains reports whether the point lies inside the shape.
	Contains(p geom.Point) bool
	// PointCount returns the number of points needed to represent the shape.
	PointCount() int
}

// --- MBB ---------------------------------------------------------------------

// MBBShape is the plain minimum bounding box.
type MBBShape struct{ Rect geom.Rect }

// NewMBB builds the MBB of the given objects.
func NewMBB(objects []geom.Rect) MBBShape { return MBBShape{Rect: geom.MBROf(objects)} }

// Name implements Shape.
func (s MBBShape) Name() string { return "MBB" }

// Area implements Shape.
func (s MBBShape) Area() float64 { return s.Rect.Volume() }

// Contains implements Shape.
func (s MBBShape) Contains(p geom.Point) bool { return s.Rect.ContainsPoint(p) }

// PointCount implements Shape: an MBB needs two points.
func (s MBBShape) PointCount() int { return 2 }

// --- Minimum bounding circle ---------------------------------------------------

// CircleShape is a bounding ball (circle in 2d, sphere in 3d).
type CircleShape struct {
	Center geom.Point
	Radius float64
	dims   int
}

// Name implements Shape.
func (s CircleShape) Name() string { return "MBC" }

// Area implements Shape: circle area in 2d, sphere volume in 3d.
func (s CircleShape) Area() float64 {
	switch s.dims {
	case 2:
		return math.Pi * s.Radius * s.Radius
	case 3:
		return 4.0 / 3.0 * math.Pi * math.Pow(s.Radius, 3)
	default:
		// General d-ball volume.
		d := float64(s.dims)
		return math.Pow(math.Pi, d/2) / math.Gamma(d/2+1) * math.Pow(s.Radius, d)
	}
}

// Contains implements Shape.
func (s CircleShape) Contains(p geom.Point) bool {
	return s.Center.DistSq(p) <= s.Radius*s.Radius*(1+1e-12)
}

// PointCount implements Shape: a ball needs a centre point and a radius; the
// paper counts it as at most two points.
func (s CircleShape) PointCount() int { return 2 }

// NewMBC computes the minimum bounding circle of the corner points of the
// given objects using Welzl's randomised algorithm (exact in 2d; in higher
// dimensions it falls back to a Ritter-style approximation, which is only
// used for statistics, never for query correctness).
func NewMBC(objects []geom.Rect) CircleShape {
	pts := cornerCloud(objects)
	if len(pts) == 0 {
		return CircleShape{}
	}
	dims := pts[0].Dims()
	if dims == 2 {
		c, r := welzl2d(pts)
		return CircleShape{Center: c, Radius: r, dims: 2}
	}
	c, r := ritter(pts)
	return CircleShape{Center: c, Radius: r, dims: dims}
}

// cornerCloud returns all corner points of the objects (the extreme points
// that any bounding shape must cover).
func cornerCloud(objects []geom.Rect) []geom.Point {
	var pts []geom.Point
	for _, o := range objects {
		dims := o.Dims()
		geom.Corners(dims, func(b geom.Corner) {
			pts = append(pts, o.Corner(b))
		})
	}
	return pts
}

// welzl2d computes the exact minimum enclosing circle of 2d points with the
// move-to-front heuristic of Welzl's algorithm, implemented iteratively to
// avoid deep recursion on large point sets.
func welzl2d(pts []geom.Point) (geom.Point, float64) {
	// Deterministic shuffle (fixed LCG) so results are reproducible.
	shuffled := make([]geom.Point, len(pts))
	copy(shuffled, pts)
	seed := uint64(88172645463325252)
	for i := len(shuffled) - 1; i > 0; i-- {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		j := int(seed % uint64(i+1))
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	var cx, cy, r float64
	contains := func(p geom.Point) bool {
		dx, dy := p[0]-cx, p[1]-cy
		return dx*dx+dy*dy <= r*r*(1+1e-10)+1e-12
	}
	circleFrom2 := func(a, b geom.Point) {
		cx, cy = (a[0]+b[0])/2, (a[1]+b[1])/2
		r = math.Hypot(a[0]-cx, a[1]-cy)
	}
	circleFrom3 := func(a, b, c geom.Point) bool {
		ax, ay := a[0], a[1]
		bx, by := b[0], b[1]
		cxx, cyy := c[0], c[1]
		d := 2 * (ax*(by-cyy) + bx*(cyy-ay) + cxx*(ay-by))
		if math.Abs(d) < 1e-12 {
			return false
		}
		ux := ((ax*ax+ay*ay)*(by-cyy) + (bx*bx+by*by)*(cyy-ay) + (cxx*cxx+cyy*cyy)*(ay-by)) / d
		uy := ((ax*ax+ay*ay)*(cxx-bx) + (bx*bx+by*by)*(ax-cxx) + (cxx*cxx+cyy*cyy)*(bx-ax)) / d
		cx, cy = ux, uy
		r = math.Hypot(ax-cx, ay-cy)
		return true
	}
	cx, cy, r = shuffled[0][0], shuffled[0][1], 0
	for i := 1; i < len(shuffled); i++ {
		if contains(shuffled[i]) {
			continue
		}
		// Circle must pass through shuffled[i].
		cx, cy, r = shuffled[i][0], shuffled[i][1], 0
		for j := 0; j < i; j++ {
			if contains(shuffled[j]) {
				continue
			}
			circleFrom2(shuffled[i], shuffled[j])
			for k := 0; k < j; k++ {
				if contains(shuffled[k]) {
					continue
				}
				if !circleFrom3(shuffled[i], shuffled[j], shuffled[k]) {
					// Collinear: fall back to the widest pair.
					circleFrom2(shuffled[i], shuffled[k])
					if !contains(shuffled[j]) {
						circleFrom2(shuffled[j], shuffled[k])
					}
				}
			}
		}
	}
	return geom.Pt(cx, cy), r
}

// ritter computes an approximate bounding ball (within ~5 % of optimal) in
// any dimensionality.
func ritter(pts []geom.Point) (geom.Point, float64) {
	// Start from the two points farthest apart along an axis sweep.
	a := pts[0]
	b := farthestFrom(pts, a)
	c := farthestFrom(pts, b)
	centre := b.Add(c).Scale(0.5)
	radius := b.Dist(c) / 2
	for _, p := range pts {
		d := centre.Dist(p)
		if d > radius {
			// Grow the ball to include p.
			newR := (radius + d) / 2
			shift := (d - newR) / d
			centre = centre.Add(p.Sub(centre).Scale(shift))
			radius = newR
		}
	}
	return centre, radius
}

func farthestFrom(pts []geom.Point, from geom.Point) geom.Point {
	best := from
	bestD := -1.0
	for _, p := range pts {
		if d := from.DistSq(p); d > bestD {
			bestD, best = d, p
		}
	}
	return best
}

// --- Convex polygons -----------------------------------------------------------

// PolygonShape is a convex polygon in 2d, stored as counter-clockwise
// vertices.
type PolygonShape struct {
	Vertices []geom.Point
	label    string
}

// Name implements Shape.
func (s PolygonShape) Name() string { return s.label }

// Area implements Shape (shoelace formula).
func (s PolygonShape) Area() float64 {
	n := len(s.Vertices)
	if n < 3 {
		return 0
	}
	var a float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += s.Vertices[i][0]*s.Vertices[j][1] - s.Vertices[j][0]*s.Vertices[i][1]
	}
	return math.Abs(a) / 2
}

// Contains implements Shape for convex polygons: the point must be on the
// inner side of every edge.
func (s PolygonShape) Contains(p geom.Point) bool {
	n := len(s.Vertices)
	if n < 3 {
		return false
	}
	sign := 0
	for i := 0; i < n; i++ {
		a, b := s.Vertices[i], s.Vertices[(i+1)%n]
		cr := cross(a, b, p)
		if math.Abs(cr) < 1e-12 {
			continue
		}
		if cr > 0 {
			if sign < 0 {
				return false
			}
			sign = 1
		} else {
			if sign > 0 {
				return false
			}
			sign = -1
		}
	}
	return true
}

// PointCount implements Shape.
func (s PolygonShape) PointCount() int { return len(s.Vertices) }

func cross(o, a, b geom.Point) float64 {
	return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
}

// NewConvexHull computes the convex hull of the objects' corners (Andrew's
// monotone chain, equivalent to the Graham scan the paper cites).
func NewConvexHull(objects []geom.Rect) PolygonShape {
	pts := cornerCloud(objects)
	hull := convexHull2d(pts)
	return PolygonShape{Vertices: hull, label: "CH"}
}

func convexHull2d(pts []geom.Point) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	// Sort lexicographically by (x, y).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && (sorted[j][0] < sorted[j-1][0] ||
			(sorted[j][0] == sorted[j-1][0] && sorted[j][1] < sorted[j-1][1])); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// Deduplicate.
	uniq := sorted[:0]
	for i, p := range sorted {
		if i == 0 || !p.Equal(sorted[i-1]) {
			uniq = append(uniq, p)
		}
	}
	sorted = uniq
	if len(sorted) < 3 {
		return sorted
	}
	var lower, upper []geom.Point
	for _, p := range sorted {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return hull
}

// NewRotatedMBB computes the minimum-area rectangle over all orientations
// aligned with a convex-hull edge (rotating-calipers style search, as the
// paper describes: "iterating the edges of the convex hull and computing the
// minimum bounding box with the same orientation as each edge").
func NewRotatedMBB(objects []geom.Rect) PolygonShape {
	hull := convexHull2d(cornerCloud(objects))
	if len(hull) < 3 {
		mbb := NewMBB(objects)
		return PolygonShape{Vertices: rectCorners(mbb.Rect), label: "RMBB"}
	}
	bestArea := math.Inf(1)
	var best []geom.Point
	for i := 0; i < len(hull); i++ {
		a, b := hull[i], hull[(i+1)%len(hull)]
		angle := math.Atan2(b[1]-a[1], b[0]-a[0])
		cosA, sinA := math.Cos(-angle), math.Sin(-angle)
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		for _, p := range hull {
			x := p[0]*cosA - p[1]*sinA
			y := p[0]*sinA + p[1]*cosA
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		area := (maxX - minX) * (maxY - minY)
		if area < bestArea {
			bestArea = area
			// Rotate the box corners back into the original frame.
			cosB, sinB := math.Cos(angle), math.Sin(angle)
			rot := func(x, y float64) geom.Point {
				return geom.Pt(x*cosB-y*sinB, x*sinB+y*cosB)
			}
			best = []geom.Point{rot(minX, minY), rot(maxX, minY), rot(maxX, maxY), rot(minX, maxY)}
		}
	}
	return PolygonShape{Vertices: best, label: "RMBB"}
}

func rectCorners(r geom.Rect) []geom.Point {
	return []geom.Point{
		geom.Pt(r.Lo[0], r.Lo[1]), geom.Pt(r.Hi[0], r.Lo[1]),
		geom.Pt(r.Hi[0], r.Hi[1]), geom.Pt(r.Lo[0], r.Hi[1]),
	}
}

// NewKCornerPolygon computes a convex polygon with at most k corners that
// bounds the objects, by greedy edge removal on the convex hull: for each
// hull edge, extend its two neighbouring edges until they meet; replacing
// the edge's endpoints by that intersection point bounds a superset of the
// hull and removes one vertex. The edge whose removal adds the least area is
// collapsed repeatedly until only k vertices remain. This is the standard
// heuristic for minimum-area circumscribing polygons; it slightly
// over-estimates the optimal 4-C/5-C area, which only biases the comparison
// against CBBs conservatively.
func NewKCornerPolygon(objects []geom.Rect, k int) PolygonShape {
	label := fmt.Sprintf("%d-C", k)
	hull := convexHull2d(cornerCloud(objects))
	if len(hull) <= k {
		return PolygonShape{Vertices: hull, label: label}
	}
	verts := append([]geom.Point(nil), hull...)
	for len(verts) > k && len(verts) > 3 {
		n := len(verts)
		bestIdx := -1
		bestCost := math.Inf(1)
		var bestPoint geom.Point
		for i := 0; i < n; i++ {
			// Edge to remove: (a, b) with neighbours prev->a and b->next.
			prev := verts[(i-1+n)%n]
			a := verts[i]
			b := verts[(i+1)%n]
			next := verts[(i+2)%n]
			p, ta, tb, ok := lineIntersection(prev, a, next, b)
			if !ok || ta <= 1 || tb <= 1 {
				// The neighbouring edges diverge; collapsing this edge would
				// not produce a bounding polygon.
				continue
			}
			added := triangleArea(a, p, b)
			if added < bestCost {
				bestCost, bestIdx, bestPoint = added, i, p
			}
		}
		if bestIdx < 0 {
			break
		}
		// Replace vertices bestIdx and bestIdx+1 by the intersection point.
		next := (bestIdx + 1) % len(verts)
		verts[bestIdx] = bestPoint
		verts = append(verts[:next], verts[next+1:]...)
	}
	return PolygonShape{Vertices: verts, label: label}
}

func triangleArea(a, b, c geom.Point) float64 {
	return math.Abs(cross(a, b, c)) / 2
}

// lineIntersection intersects the infinite lines through (a1,a2) and
// (b1,b2), returning the intersection point and the line parameters ta, tb
// such that p = a1 + ta·(a2−a1) = b1 + tb·(b2−b1).
func lineIntersection(a1, a2, b1, b2 geom.Point) (p geom.Point, ta, tb float64, ok bool) {
	dax, day := a2[0]-a1[0], a2[1]-a1[1]
	dbx, dby := b2[0]-b1[0], b2[1]-b1[1]
	den := dax*dby - day*dbx
	if math.Abs(den) < 1e-12 {
		return nil, 0, 0, false
	}
	ta = ((b1[0]-a1[0])*dby - (b1[1]-a1[1])*dbx) / den
	tb = ((b1[0]-a1[0])*day - (b1[1]-a1[1])*dax) / den
	return geom.Pt(a1[0]+ta*dax, a1[1]+ta*day), ta, tb, true
}

// --- CBB as a shape -------------------------------------------------------------

// CBBShape adapts a clipped bounding box to the Shape interface so it can be
// compared against the convex alternatives.
type CBBShape struct {
	MBB   geom.Rect
	Clips []core.ClipPoint
	label string
}

// NewCBBShape clips the MBB of the objects with the given parameters and
// returns the result as a Shape. The label follows the paper's naming
// (CBBSKY / CBBSTA).
func NewCBBShape(objects []geom.Rect, params core.Params) CBBShape {
	mbb := geom.MBROf(objects)
	clips := core.Clip(mbb, objects, params)
	label := "CBBSKY"
	if params.Method == core.MethodStairline {
		label = "CBBSTA"
	}
	return CBBShape{MBB: mbb, Clips: clips, label: label}
}

// Name implements Shape.
func (s CBBShape) Name() string { return s.label }

// Area implements Shape: the MBB volume minus the exact clipped volume.
func (s CBBShape) Area() float64 {
	return s.MBB.Volume() - core.ClippedVolume(s.MBB, s.Clips)
}

// Contains implements Shape: inside the MBB and not strictly inside any
// clipped region.
func (s CBBShape) Contains(p geom.Point) bool {
	if !s.MBB.ContainsPoint(p) {
		return false
	}
	return !core.CoversPoint(s.MBB, s.Clips, p)
}

// PointCount implements Shape: the two MBB points plus one per clip point
// (matching how Figure 9b counts representation cost).
func (s CBBShape) PointCount() int { return 2 + len(s.Clips) }
