package datasets

import (
	"fmt"
	"math"
	"testing"

	"cbb/internal/geom"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("expected 9 datasets, got %d", len(names))
	}
	for _, name := range names {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if spec.Dims != 2 && spec.Dims != 3 {
			t.Errorf("%s: dims = %d", name, spec.Dims)
		}
		if spec.DefaultSize <= 0 || spec.PaperSize <= 0 || spec.Description == "" {
			t.Errorf("%s: incomplete spec %+v", name, spec)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
	paper := PaperNames()
	if len(paper) != 7 {
		t.Fatalf("expected 7 paper datasets, got %v", paper)
	}
	for _, name := range paper {
		spec, _ := Lookup(name)
		if spec.Extension {
			t.Errorf("%s is an extension workload but listed by PaperNames", name)
		}
	}
}

func TestUniverse(t *testing.T) {
	for _, name := range Names() {
		u, err := Universe(name)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := Lookup(name)
		if u.Dims() != spec.Dims || !u.Valid() || u.Volume() <= 0 {
			t.Errorf("%s: bad universe %v", name, u)
		}
	}
	if _, err := Universe("nope"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			objs, err := Generate(name, 3000, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(objs) != 3000 {
				t.Fatalf("generated %d objects, want 3000", len(objs))
			}
			spec, _ := Lookup(name)
			uni, _ := Universe(name)
			for i, o := range objs {
				if !o.Valid() {
					t.Fatalf("object %d invalid: %v", i, o)
				}
				if o.Dims() != spec.Dims {
					t.Fatalf("object %d has %d dims, want %d", i, o.Dims(), spec.Dims)
				}
				if !uni.ContainsRect(o) {
					t.Fatalf("object %d escapes the universe: %v", i, o)
				}
			}
		})
	}
}

func TestGenerateDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, _ := Generate(name, 500, 42)
		b, _ := Generate(name, 500, 42)
		c, _ := Generate(name, 500, 43)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s: same seed produced different object %d", name, i)
			}
		}
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical data", name)
		}
	}
}

func TestGenerateDefaultSizeAndErrors(t *testing.T) {
	objs, err := Generate("par02", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := Lookup("par02")
	if len(objs) != spec.DefaultSize {
		t.Errorf("default size not honoured: %d vs %d", len(objs), spec.DefaultSize)
	}
	if _, err := Generate("bogus", 10, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestPointDatasetsAreDegenerate(t *testing.T) {
	objs, _ := Generate("rea03", 1000, 3)
	for _, o := range objs {
		if o.Volume() != 0 {
			t.Fatalf("rea03 should contain only points, found %v", o)
		}
	}
	// rea02 contains both points and segments.
	objs2, _ := Generate("rea02", 5000, 3)
	points, rects := 0, 0
	for _, o := range objs2 {
		if o.Volume() == 0 && o.Margin() == 0 {
			points++
		} else {
			rects++
		}
	}
	if points == 0 || rects == 0 {
		t.Errorf("rea02 should mix points (%d) and segments (%d)", points, rects)
	}
}

func TestTubulesAreSkinny(t *testing.T) {
	// Axon-like objects are long and thin: their average aspect ratio
	// (longest side / shortest side) must be clearly above 1, and the
	// average fill of their own MBB is irrelevant here — we check elongation.
	objs, _ := Generate("axo03", 3000, 5)
	elongated := 0
	for _, o := range objs {
		longest, shortest := 0.0, 1e18
		for d := 0; d < 3; d++ {
			s := o.Side(d)
			if s > longest {
				longest = s
			}
			if s < shortest {
				shortest = s
			}
		}
		if shortest > 0 && longest/shortest > 3 {
			elongated++
		}
	}
	if float64(elongated) < 0.5*float64(len(objs)) {
		t.Errorf("axon segments should be mostly elongated: %d of %d", elongated, len(objs))
	}
}

func TestParametricSizeVariance(t *testing.T) {
	// The parametric datasets are documented as having "a very large
	// variance in size and shape": the largest object volume should exceed
	// the median by orders of magnitude.
	objs, _ := Generate("par02", 5000, 7)
	vols := make([]float64, len(objs))
	for i, o := range objs {
		vols[i] = o.Volume()
	}
	var max float64
	for _, v := range vols {
		if v > max {
			max = v
		}
	}
	// median
	med := median(vols)
	if med <= 0 || max/med < 100 {
		t.Errorf("expected heavy-tailed sizes: max=%g median=%g", max, med)
	}
}

func median(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

func TestStreetsAreClustered(t *testing.T) {
	// Street data should be clustered: the density inside the densest 10 %
	// of the universe should far exceed the average density.
	objs, _ := Generate("rea02", 8000, 9)
	uni, _ := Universe("rea02")
	cell := uni.Hi[0] / 10
	counts := make(map[[2]int]int)
	for _, o := range objs {
		c := o.Center()
		key := [2]int{int(c[0] / cell), int(c[1] / cell)}
		counts[key]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	avg := float64(len(objs)) / 100
	if float64(max) < 3*avg {
		t.Errorf("street data not clustered enough: max cell %d vs avg %.0f", max, avg)
	}
	_ = geom.Rect{}
}

func BenchmarkGenerateAxons(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Generate("axo03", 10000, int64(i))
	}
}

func TestHotRegionsAreSkewed(t *testing.T) {
	// The hot workloads must be far more skewed than uniform data: with a
	// zipf exponent of 1.4 the single hottest 10 %-cell should hold a large
	// multiple of the average cell population, and raising the exponent
	// should concentrate the data further.
	for _, name := range []string{"hot02", "hot03"} {
		t.Run(name, func(t *testing.T) {
			spec, _ := Lookup(name)
			objs, err := Generate(name, 8000, 5)
			if err != nil {
				t.Fatal(err)
			}
			uni, _ := Universe(name)
			cell := uni.Hi[0] / 10
			counts := make(map[[3]int]int)
			for _, o := range objs {
				c := o.Center()
				var key [3]int
				for d := 0; d < spec.Dims; d++ {
					key[d] = int(c[d] / cell)
				}
				counts[key]++
			}
			max := 0
			for _, n := range counts {
				if n > max {
					max = n
				}
			}
			cells := math.Pow(10, float64(spec.Dims))
			avg := float64(len(objs)) / cells
			if float64(max) < 5*avg {
				t.Errorf("hot data not skewed enough: max cell %d vs avg %.1f", max, avg)
			}
		})
	}
}

func TestGenerateHotParams(t *testing.T) {
	// Explicit parameters: more hotspots spread the mass over more distinct
	// regions; an invalid name errors; defaults match Generate.
	few, err := GenerateHot("hot02", 4000, 3, HotParams{Hotspots: 2, ZipfS: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	many, err := GenerateHot("hot02", 4000, 3, HotParams{Hotspots: 64, ZipfS: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	spread := func(objs []geom.Rect) int {
		cell := universeSide / 20
		seen := make(map[[2]int]bool)
		for _, o := range objs {
			c := o.Center()
			seen[[2]int{int(c[0] / cell), int(c[1] / cell)}] = true
		}
		return len(seen)
	}
	if spread(few) >= spread(many) {
		t.Errorf("2 hotspots cover %d cells, 64 hotspots cover %d; want fewer for fewer hotspots", spread(few), spread(many))
	}
	def, err := GenerateHot("hot03", 1000, 7, HotParams{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate("hot03", 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range def {
		if !def[i].Equal(gen[i]) {
			t.Fatalf("GenerateHot defaults diverge from Generate at object %d", i)
		}
	}
	if _, err := GenerateHot("par02", 100, 1, HotParams{}); err == nil {
		t.Error("GenerateHot should reject non-hot datasets")
	}
}

func TestGenerateStream(t *testing.T) {
	const n, chunk = 5000, 1024
	collect := func() []geom.Rect {
		var out []geom.Rect
		sizes := []int{}
		err := GenerateStream("rea02", n, 7, chunk, func(c []geom.Rect) error {
			sizes = append(sizes, len(c))
			out = append(out, c...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sizes {
			want := chunk
			if i == len(sizes)-1 {
				want = n - chunk*(len(sizes)-1)
			}
			if s != want {
				t.Fatalf("chunk %d has %d objects, want %d", i, s, want)
			}
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != n {
		t.Fatalf("streamed %d objects, want %d", len(a), n)
	}
	u, _ := Universe("rea02")
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("object %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
		if !u.ContainsRect(a[i]) {
			t.Fatalf("object %d escapes the universe: %v", i, a[i])
		}
	}
	if err := GenerateStream("nope", 10, 1, 4, func([]geom.Rect) error { return nil }); err == nil {
		t.Error("unknown dataset should error")
	}
	sentinel := fmt.Errorf("stop")
	if err := GenerateStream("rea02", 10, 1, 4, func([]geom.Rect) error { return sentinel }); err != sentinel {
		t.Errorf("yield error not propagated: %v", err)
	}
}
