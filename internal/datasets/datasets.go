// Package datasets provides seeded synthetic generators standing in for the
// seven datasets of the paper's evaluation. The real datasets (California
// street segments, a biological point file, and Human Brain Project neuron
// morphologies) are not redistributable, so each generator reproduces the
// structural properties the paper attributes its results to:
//
//	par02 / par03 — boxes with very large variance in size and shape
//	                (log-normal extents around uniformly placed centres), the
//	                documented behaviour of the benchmark's parametric
//	                generator;
//	rea02         — street-network-like 2d data: thin axis-aligned and
//	                diagonal segments arranged in grid-distorted clusters
//	                ("streets wrap around dead space, particularly in cities
//	                with grid patterns");
//	rea03         — clustered 3d points (zero-volume objects);
//	axo03         — long, thin, randomly walking 3d tubule segments with a
//	                persistent direction (axon-like);
//	den03         — shorter, branchier tubule segments (dendrite-like);
//	neu03         — a mixture of axon-like and dendrite-like segments
//	                (neurite-like).
//
// Two extra workloads beyond the paper's seven drive the sharded engine's
// skew handling:
//
//	hot02 / hot03 — a few small hot regions receive a zipf-distributed share
//	                of all objects over a thin uniform background, so
//	                spatial partitions see extremely unbalanced populations.
//
// All generators are deterministic given (name, n, seed), and every emitted
// coordinate is rounded to float32 precision: the source datasets carry ~7
// significant digits (surveyed street geometry, reconstructed morphologies),
// so full-entropy float64 mantissas would misrepresent them — and would make
// the snapshot format's lossless leaf compression look worse than it is on
// real data. See DESIGN.md §4 for the substitution rationale.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cbb/internal/geom"
)

// Spec describes one synthetic dataset.
type Spec struct {
	// Name is the paper's dataset identifier (e.g. "rea02").
	Name string
	// Dims is the dimensionality (2 or 3).
	Dims int
	// DefaultSize is the object count used by the evaluation harness when no
	// explicit scale is requested.
	DefaultSize int
	// PaperSize is the object count of the original dataset, for reference.
	PaperSize int
	// Description summarises what the generator emulates.
	Description string
	// Extension marks workloads added beyond the paper's seven datasets;
	// the paper-reproduction experiments default to the non-extension set.
	Extension bool
}

// Specs lists the seven paper datasets in the order the paper's figures
// use, followed by the hot-region workloads added for the sharded engine.
var Specs = []Spec{
	{Name: "par02", Dims: 2, DefaultSize: 40000, PaperSize: 1048576, Description: "synthetic 2d boxes with large size/shape variance"},
	{Name: "par03", Dims: 3, DefaultSize: 40000, PaperSize: 1048576, Description: "synthetic 3d boxes with large size/shape variance"},
	{Name: "rea02", Dims: 2, DefaultSize: 40000, PaperSize: 1888012, Description: "street-segment-like 2d rectangles and points"},
	{Name: "rea03", Dims: 3, DefaultSize: 40000, PaperSize: 11958999, Description: "clustered 3d points (biological attributes)"},
	{Name: "axo03", Dims: 3, DefaultSize: 40000, PaperSize: 2570016, Description: "axon-like thin 3d tubule segments"},
	{Name: "den03", Dims: 3, DefaultSize: 40000, PaperSize: 1288251, Description: "dendrite-like branchy 3d tubule segments"},
	{Name: "neu03", Dims: 3, DefaultSize: 40000, PaperSize: 3858267, Description: "neurite-like mixed 3d tubule segments"},
	{Name: "hot02", Dims: 2, DefaultSize: 40000, PaperSize: 40000, Description: "skewed 2d boxes: zipf-weighted hot regions over a uniform background", Extension: true},
	{Name: "hot03", Dims: 3, DefaultSize: 40000, PaperSize: 40000, Description: "skewed 3d boxes: zipf-weighted hot regions over a uniform background", Extension: true},
}

// Names returns the dataset names in figure order.
func Names() []string {
	out := make([]string, len(Specs))
	for i, s := range Specs {
		out[i] = s.Name
	}
	return out
}

// PaperNames returns only the paper's seven dataset names, excluding the
// extension workloads; the figure/table experiments default to this set.
func PaperNames() []string {
	var out []string
	for _, s := range Specs {
		if !s.Extension {
			out = append(out, s.Name)
		}
	}
	return out
}

// Lookup returns the Spec for a dataset name.
func Lookup(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
}

// universeSide is the extent of the data universe in every dimension.
const universeSide = 10000.0

// Universe returns the bounding universe of the named dataset.
func Universe(name string) (geom.Rect, error) {
	spec, err := Lookup(name)
	if err != nil {
		return geom.Rect{}, err
	}
	lo := make(geom.Point, spec.Dims)
	hi := make(geom.Point, spec.Dims)
	for d := 0; d < spec.Dims; d++ {
		hi[d] = universeSide
	}
	return geom.Rect{Lo: lo, Hi: hi}, nil
}

// Generate produces n objects of the named dataset using the given seed.
// With n <= 0 the spec's DefaultSize is used.
func Generate(name string, n int, seed int64) ([]geom.Rect, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = spec.DefaultSize
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32))
	switch name {
	case "par02":
		return roundRects(genParametric(rng, n, 2)), nil
	case "par03":
		return roundRects(genParametric(rng, n, 3)), nil
	case "rea02":
		return roundRects(genStreets(rng, n)), nil
	case "rea03":
		return roundRects(genClusteredPoints(rng, n)), nil
	case "axo03":
		return roundRects(genTubules(rng, n, tubuleParams{segments: 200, stepLen: 18, jitter: 0.15, radius: 0.6})), nil
	case "den03":
		return roundRects(genTubules(rng, n, tubuleParams{segments: 40, stepLen: 8, jitter: 0.5, radius: 0.9})), nil
	case "neu03":
		return roundRects(genNeurites(rng, n)), nil
	case "hot02":
		return roundRects(genHotRegions(rng, n, 2, HotParams{}.withDefaults())), nil
	case "hot03":
		return roundRects(genHotRegions(rng, n, 3, HotParams{}.withDefaults())), nil
	default:
		return nil, fmt.Errorf("datasets: generator for %q not implemented", name)
	}
}

// roundRects rounds every coordinate to float32 precision, in place — the
// emulated source data has ~7 significant digits, not 16. Rounding to nearest
// is monotone, so lo <= hi survives, and universe bounds survive too: the
// bounds are powers-of-ten representable in float32 exactly, and no value
// inside the range can round past them.
func roundRects(rs []geom.Rect) []geom.Rect {
	for _, r := range rs {
		for d := range r.Lo {
			r.Lo[d] = float64(float32(r.Lo[d]))
			r.Hi[d] = float64(float32(r.Hi[d]))
		}
	}
	return rs
}

// GenerateStream produces n objects of the named dataset in chunks of at most
// chunkSize, calling yield once per chunk, so a dataset larger than RAM can be
// generated while holding only one chunk in memory. Each chunk is produced by
// an independent generator seeded deterministically from (seed, chunk index):
// the stream is fully reproducible for a given (name, n, seed, chunkSize), but
// it is a different object sequence than Generate(name, n, seed) — per-chunk
// generator state (city layouts, clusters, fibres) is re-derived, so the union
// simply has proportionally more of those structures, with the same
// distributional shape. A yield error aborts the stream and is returned
// verbatim.
func GenerateStream(name string, n int, seed int64, chunkSize int, yield func(chunk []geom.Rect) error) error {
	spec, err := Lookup(name)
	if err != nil {
		return err
	}
	if n <= 0 {
		n = spec.DefaultSize
	}
	if chunkSize <= 0 {
		chunkSize = 1 << 20
	}
	for chunk := 0; n > 0; chunk++ {
		m := min(n, chunkSize)
		// splitmix64-style seed derivation keeps the chunk streams decorrelated
		// even for adjacent seeds.
		cs := seed + int64(chunk)*-7046029254386353131 // golden-ratio odd constant
		objs, err := Generate(name, m, cs)
		if err != nil {
			return err
		}
		if err := yield(objs); err != nil {
			return err
		}
		n -= m
	}
	return nil
}

// HotParams tunes the skewed hot-region generators (hot02, hot03).
type HotParams struct {
	// Hotspots is the number of hot regions. Default 8.
	Hotspots int
	// ZipfS is the exponent of the zipf law weighting the regions; region
	// rank r receives mass proportional to 1/(r+1)^s, so larger values
	// concentrate more of the data in the first few regions. Must be > 1
	// for the standard-library sampler. Default 1.4.
	ZipfS float64
	// Background is the fraction of objects drawn uniformly from the whole
	// universe instead of from a hot region. Default 0.1.
	Background float64
}

func (p HotParams) withDefaults() HotParams {
	if p.Hotspots <= 0 {
		p.Hotspots = 8
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.4
	}
	if p.Background <= 0 || p.Background >= 1 {
		p.Background = 0.1
	}
	return p
}

// GenerateHot produces n objects of a skewed hot-region dataset ("hot02" or
// "hot03") with explicit skew parameters; Generate uses the defaults. The
// generator models write/read hotspots: a few small regions receive a
// zipf-distributed share of all objects, over a thin uniform background.
// Spatial partitions (such as Hilbert-range shards) therefore see extremely
// unbalanced populations — the workload shard rebalancing exists for.
func GenerateHot(name string, n int, seed int64, p HotParams) ([]geom.Rect, error) {
	spec, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if name != "hot02" && name != "hot03" {
		return nil, fmt.Errorf("datasets: %q is not a hot-region dataset", name)
	}
	if n <= 0 {
		n = spec.DefaultSize
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32))
	return roundRects(genHotRegions(rng, n, spec.Dims, p.withDefaults())), nil
}

// genHotRegions draws each object either uniformly (background) or from a
// zipf-ranked Gaussian region: tight spreads and small extents inside the
// regions, so the hot mass stays spatially concentrated.
func genHotRegions(rng *rand.Rand, n, dims int, p HotParams) []geom.Rect {
	type region struct {
		c      geom.Point
		spread float64
	}
	regions := make([]region, p.Hotspots)
	for i := range regions {
		c := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			c[d] = rng.Float64() * universeSide
		}
		regions[i] = region{c: c, spread: 80 + rng.Float64()*220}
	}
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Hotspots-1))
	out := make([]geom.Rect, 0, n)
	for len(out) < n {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		if rng.Float64() < p.Background {
			// Background object: uniform centre, modest extent.
			for d := 0; d < dims; d++ {
				c := rng.Float64() * universeSide
				ext := 1 + rng.Float64()*30
				lo[d] = clamp(c-ext/2, 0, universeSide)
				hi[d] = clamp(c+ext/2, 0, universeSide)
			}
		} else {
			rg := regions[zipf.Uint64()]
			for d := 0; d < dims; d++ {
				c := clamp(rg.c[d]+rng.NormFloat64()*rg.spread, 0, universeSide)
				ext := math.Exp(rng.NormFloat64()*0.8) * 2
				if ext > 40 {
					ext = 40
				}
				lo[d] = clamp(c-ext/2, 0, universeSide)
				hi[d] = clamp(c+ext/2, 0, universeSide)
			}
		}
		out = append(out, geom.Rect{Lo: lo, Hi: hi})
	}
	return out
}

// genParametric emulates the benchmark's parametric generator: centres are
// uniform in the universe; extents are log-normal with a heavy tail, drawn
// independently per dimension so aspect ratios vary wildly.
func genParametric(rng *rand.Rand, n, dims int) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			c := rng.Float64() * universeSide
			// Log-normal extent: median ~2 units, occasionally hundreds.
			ext := math.Exp(rng.NormFloat64()*1.6) * 2
			if ext > universeSide/10 {
				ext = universeSide / 10
			}
			lo[d] = clamp(c-ext/2, 0, universeSide)
			hi[d] = clamp(c+ext/2, 0, universeSide)
			if hi[d] < lo[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		out = append(out, geom.Rect{Lo: lo, Hi: hi})
	}
	return out
}

// genStreets emulates a street network: a handful of city clusters, each
// with a locally rotated grid of streets subdivided into short, thin
// segments, plus sparse long-distance diagonal roads. About 10 % of the
// objects are points (addresses / POIs), matching "rectangles and points".
func genStreets(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	numCities := 12
	type city struct {
		cx, cy, radius, angle float64
	}
	cities := make([]city, numCities)
	for i := range cities {
		cities[i] = city{
			cx:     rng.Float64() * universeSide,
			cy:     rng.Float64() * universeSide,
			radius: 300 + rng.Float64()*900,
			angle:  rng.Float64() * math.Pi / 2,
		}
	}
	for len(out) < n {
		r := rng.Float64()
		switch {
		case r < 0.10:
			// A point object.
			c := cities[rng.Intn(numCities)]
			x := c.cx + rng.NormFloat64()*c.radius/2
			y := c.cy + rng.NormFloat64()*c.radius/2
			p := geom.Pt(clamp(x, 0, universeSide), clamp(y, 0, universeSide))
			out = append(out, geom.PointRect(p))
		case r < 0.85:
			// A city-grid street segment: short, thin, aligned with the
			// city's local grid orientation.
			c := cities[rng.Intn(numCities)]
			x := c.cx + rng.NormFloat64()*c.radius/2
			y := c.cy + rng.NormFloat64()*c.radius/2
			length := 10 + rng.Float64()*60
			theta := c.angle
			if rng.Intn(2) == 0 {
				theta += math.Pi / 2
			}
			out = append(out, segmentRect2(x, y, theta, length))
		default:
			// A long-distance road segment between two cities (diagonal).
			a := cities[rng.Intn(numCities)]
			b := cities[rng.Intn(numCities)]
			t := rng.Float64()
			x := a.cx + (b.cx-a.cx)*t
			y := a.cy + (b.cy-a.cy)*t
			theta := math.Atan2(b.cy-a.cy, b.cx-a.cx)
			length := 40 + rng.Float64()*120
			out = append(out, segmentRect2(x, y, theta, length))
		}
	}
	return out[:n]
}

// segmentRect2 builds the MBB of a thin 2d segment of the given length and
// orientation centred at (x, y).
func segmentRect2(x, y, theta, length float64) geom.Rect {
	dx := math.Cos(theta) * length / 2
	dy := math.Sin(theta) * length / 2
	lo := geom.Pt(clamp(math.Min(x-dx, x+dx), 0, universeSide), clamp(math.Min(y-dy, y+dy), 0, universeSide))
	hi := geom.Pt(clamp(math.Max(x-dx, x+dx), 0, universeSide), clamp(math.Max(y-dy, y+dy), 0, universeSide))
	return geom.Rect{Lo: lo, Hi: hi}
}

// genClusteredPoints emulates the 3d point dataset: Gaussian clusters of
// zero-volume points with skewed cluster populations.
func genClusteredPoints(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	numClusters := 40
	type cluster struct {
		c      geom.Point
		spread float64
		weight float64
	}
	clusters := make([]cluster, numClusters)
	totalW := 0.0
	for i := range clusters {
		w := math.Exp(rng.NormFloat64())
		clusters[i] = cluster{
			c:      geom.Pt(rng.Float64()*universeSide, rng.Float64()*universeSide, rng.Float64()*universeSide),
			spread: 50 + rng.Float64()*400,
			weight: w,
		}
		totalW += w
	}
	for len(out) < n {
		// Weighted cluster choice.
		target := rng.Float64() * totalW
		idx := 0
		for acc := 0.0; idx < numClusters-1; idx++ {
			acc += clusters[idx].weight
			if acc >= target {
				break
			}
		}
		cl := clusters[idx]
		p := geom.Pt(
			clamp(cl.c[0]+rng.NormFloat64()*cl.spread, 0, universeSide),
			clamp(cl.c[1]+rng.NormFloat64()*cl.spread, 0, universeSide),
			clamp(cl.c[2]+rng.NormFloat64()*cl.spread, 0, universeSide),
		)
		out = append(out, geom.PointRect(p))
	}
	return out
}

type tubuleParams struct {
	segments int     // segments per fibre before starting a new one
	stepLen  float64 // mean segment length
	jitter   float64 // direction change per step (radians-ish)
	radius   float64 // half thickness of the tubule
}

// genTubules emulates axon/dendrite morphologies: fibres performing a
// persistent 3d random walk; each step contributes the MBB of one thin
// segment. Long skinny diagonal boxes produce exactly the pathological dead
// space the paper reports (≥ 90 % per node).
func genTubules(rng *rand.Rand, n int, p tubuleParams) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for len(out) < n {
		// Start a new fibre at a random position with a random direction.
		pos := geom.Pt(rng.Float64()*universeSide, rng.Float64()*universeSide, rng.Float64()*universeSide)
		dir := randomUnit3(rng)
		for s := 0; s < p.segments && len(out) < n; s++ {
			length := p.stepLen * (0.5 + rng.Float64())
			next := geom.Pt(
				clamp(pos[0]+dir[0]*length, 0, universeSide),
				clamp(pos[1]+dir[1]*length, 0, universeSide),
				clamp(pos[2]+dir[2]*length, 0, universeSide),
			)
			lo := pos.Min(next).Sub(geom.Pt(p.radius, p.radius, p.radius))
			hi := pos.Max(next).Add(geom.Pt(p.radius, p.radius, p.radius))
			for d := 0; d < 3; d++ {
				lo[d] = clamp(lo[d], 0, universeSide)
				hi[d] = clamp(hi[d], 0, universeSide)
			}
			out = append(out, geom.Rect{Lo: lo, Hi: hi})
			pos = next
			// Perturb the direction while keeping it persistent.
			dir = perturbUnit3(rng, dir, p.jitter)
		}
	}
	return out[:n]
}

// genNeurites mixes axon-like and dendrite-like fibres roughly 60/40.
func genNeurites(rng *rand.Rand, n int) []geom.Rect {
	axons := genTubules(rng, n*3/5, tubuleParams{segments: 200, stepLen: 18, jitter: 0.15, radius: 0.6})
	dendrites := genTubules(rng, n-len(axons), tubuleParams{segments: 40, stepLen: 8, jitter: 0.5, radius: 0.9})
	out := append(axons, dendrites...)
	// Interleave deterministically so prefixes of the slice remain mixed.
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Lo[0]+out[i].Lo[1] < out[j].Lo[0]+out[j].Lo[1]
	})
	return out
}

func randomUnit3(rng *rand.Rand) geom.Point {
	for {
		v := geom.Pt(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		if n > 1e-9 {
			return v.Scale(1 / n)
		}
	}
}

func perturbUnit3(rng *rand.Rand, dir geom.Point, jitter float64) geom.Point {
	v := geom.Pt(
		dir[0]+rng.NormFloat64()*jitter,
		dir[1]+rng.NormFloat64()*jitter,
		dir[2]+rng.NormFloat64()*jitter,
	)
	n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	if n < 1e-9 {
		return dir
	}
	return v.Scale(1 / n)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
