package datasets

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "# comment\n1,2,3,4\n\n0.5, 1.5 ,2.5,3.5\n"
	objs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Dims() != 2 {
		t.Fatalf("got %d objects of %d dims", len(objs), objs[0].Dims())
	}
	if objs[1].Lo[0] != 0.5 || objs[1].Hi[1] != 3.5 {
		t.Fatalf("parsed rect wrong: %v", objs[1])
	}
	u := BoundingUniverse(objs)
	if u.Lo[0] != 0.5 || u.Hi[0] != 3 || u.Hi[1] != 4 {
		t.Fatalf("bounding universe wrong: %v", u)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"",             // no objects
		"1,2,3",        // odd field count
		"1,2,3,4\n1,2", // dims mismatch
		"a,2,3,4",      // bad number
		"5,5,1,1",      // hi < lo
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}
