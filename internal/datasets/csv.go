package datasets

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cbb/internal/geom"
)

// ReadCSV parses the rectangle CSV format cmd/datagen writes — one object
// per line, `lo1,...,lod,hi1,...,hid` — so served datasets can round-trip
// through files (datagen → cbbserve / cbbload). Dimensionality is inferred
// from the first line; blank lines and `#` comments are skipped.
func ReadCSV(r io.Reader) ([]geom.Rect, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []geom.Rect
	dims := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dims == 0 {
			if len(fields)%2 != 0 || len(fields) == 0 {
				return nil, fmt.Errorf("datasets: line %d: %d fields, want an even count (lo...,hi...)", lineNo, len(fields))
			}
			dims = len(fields) / 2
		}
		if len(fields) != 2*dims {
			return nil, fmt.Errorf("datasets: line %d: %d fields, want %d", lineNo, len(fields), 2*dims)
		}
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[d]), 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d field %d: %w", lineNo, d+1, err)
			}
			lo[d] = v
			v, err = strconv.ParseFloat(strings.TrimSpace(fields[dims+d]), 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d field %d: %w", lineNo, dims+d+1, err)
			}
			hi[d] = v
		}
		rect, err := geom.NewRect(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: %w", lineNo, err)
		}
		out = append(out, rect)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("datasets: CSV contains no objects")
	}
	return out, nil
}

// BoundingUniverse returns the MBB of a loaded object set, the universe to
// serve a CSV dataset under when none is known a priori.
func BoundingUniverse(objs []geom.Rect) geom.Rect {
	var out geom.Rect
	for _, o := range objs {
		if out.IsZero() {
			out = o.Clone()
			continue
		}
		out = out.Union(o)
	}
	return out
}
