package hilbert

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/geom"
)

func TestEncodeDecodeRoundTrip2D(t *testing.T) {
	bits := 4
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			idx := Encode([]uint32{x, y}, bits)
			if idx >= 256 {
				t.Fatalf("index %d out of range for order-4 2d curve", idx)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d for (%d,%d)", idx, x, y)
			}
			seen[idx] = true
			back := Decode(idx, 2, bits)
			if back[0] != x || back[1] != y {
				t.Fatalf("round trip failed: (%d,%d) -> %d -> (%d,%d)", x, y, idx, back[0], back[1])
			}
		}
	}
	if len(seen) != 256 {
		t.Fatalf("curve is not a bijection: %d distinct indices", len(seen))
	}
}

func TestEncodeDecodeRoundTrip3D(t *testing.T) {
	bits := 3
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				idx := Encode([]uint32{x, y, z}, bits)
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
				back := Decode(idx, 3, bits)
				if back[0] != x || back[1] != y || back[2] != z {
					t.Fatalf("round trip failed for (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
	if len(seen) != 512 {
		t.Fatalf("3d curve not a bijection: %d indices", len(seen))
	}
}

// The defining property of the Hilbert curve: consecutive indices map to
// cells that are adjacent in space (L1 distance exactly 1).
func TestCurveContinuity(t *testing.T) {
	bits := 5
	dims := 2
	total := uint64(1) << uint(dims*bits)
	prev := Decode(0, dims, bits)
	for i := uint64(1); i < total; i++ {
		cur := Decode(i, dims, bits)
		var dist uint32
		for d := 0; d < dims; d++ {
			if cur[d] > prev[d] {
				dist += cur[d] - prev[d]
			} else {
				dist += prev[d] - cur[d]
			}
		}
		if dist != 1 {
			t.Fatalf("indices %d and %d map to non-adjacent cells %v %v", i-1, i, prev, cur)
		}
		prev = cur
	}
}

func TestCurveContinuity3D(t *testing.T) {
	bits := 3
	dims := 3
	total := uint64(1) << uint(dims*bits)
	prev := Decode(0, dims, bits)
	for i := uint64(1); i < total; i++ {
		cur := Decode(i, dims, bits)
		var dist uint32
		for d := 0; d < dims; d++ {
			if cur[d] > prev[d] {
				dist += cur[d] - prev[d]
			} else {
				dist += prev[d] - cur[d]
			}
		}
		if dist != 1 {
			t.Fatalf("3d continuity broken between %d and %d: %v -> %v", i-1, i, prev, cur)
		}
		prev = cur
	}
}

func TestNewCurveValidation(t *testing.T) {
	uni := geom.R(0, 0, 100, 100)
	if _, err := New(uni, 16); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	if _, err := New(uni, 0); err == nil {
		t.Error("0 bits must be rejected")
	}
	if _, err := New(uni, 40); err == nil {
		t.Error("2*40 bits exceeds 63 and must be rejected")
	}
	if _, err := New(geom.Rect{}, 8); err == nil {
		t.Error("invalid universe must be rejected")
	}
	uni3 := geom.R(0, 0, 0, 1, 1, 1)
	if _, err := New(uni3, 21); err != nil {
		t.Errorf("3*21 = 63 bits should be accepted: %v", err)
	}
	if _, err := New(uni3, 22); err == nil {
		t.Error("3*22 = 66 bits must be rejected")
	}
}

func TestCurveIndexClamping(t *testing.T) {
	uni := geom.R(0, 0, 100, 100)
	c, err := New(uni, 10)
	if err != nil {
		t.Fatal(err)
	}
	inside := c.Index(geom.Pt(50, 50))
	outside := c.Index(geom.Pt(500, 50))
	edge := c.Index(geom.Pt(100, 50))
	if outside != edge {
		t.Errorf("out-of-universe points should clamp to the boundary: %d vs %d", outside, edge)
	}
	_ = inside
	if c.Dims() != 2 || c.Bits() != 10 {
		t.Error("accessors wrong")
	}
}

func TestCurveDegenerateUniverse(t *testing.T) {
	// A universe that is flat in one dimension must not divide by zero.
	uni := geom.R(0, 5, 100, 5)
	c, err := New(uni, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := c.Index(geom.Pt(10, 5))
	b := c.Index(geom.Pt(90, 5))
	if a == b {
		t.Error("distinct x positions should get distinct indices even in a flat universe")
	}
}

// Locality: points that are close in space should, on average, be much
// closer in Hilbert order than random pairs. This is a statistical sanity
// check of the property the HR-tree relies on.
func TestCurveLocality(t *testing.T) {
	uni := geom.R(0, 0, 1000, 1000)
	c, err := New(uni, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	var nearSum, farSum float64
	n := 2000
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		q := geom.Pt(p[0]+rng.Float64()*5, p[1]+rng.Float64()*5) // nearby point
		r := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)     // random point
		ip, iq, ir := c.Index(p), c.Index(q), c.Index(r)
		nearSum += math.Abs(float64(ip) - float64(iq))
		farSum += math.Abs(float64(ip) - float64(ir))
	}
	if nearSum*10 > farSum {
		t.Errorf("poor locality: near pairs avg %g, random pairs avg %g", nearSum/float64(n), farSum/float64(n))
	}
}

func TestIndexRect(t *testing.T) {
	uni := geom.R(0, 0, 100, 100)
	c, _ := New(uni, 10)
	r := geom.R(10, 10, 20, 20)
	if c.IndexRect(r) != c.Index(geom.Pt(15, 15)) {
		t.Error("IndexRect should index the rectangle centre")
	}
}

func BenchmarkEncode2D(b *testing.B) {
	coords := []uint32{12345, 54321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(coords, 16)
	}
}

func BenchmarkCurveIndex3D(b *testing.B) {
	uni := geom.R(0, 0, 0, 1000, 1000, 1000)
	c, _ := New(uni, 16)
	p := geom.Pt(123.4, 567.8, 910.11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Index(p)
	}
}
