package hilbert

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/geom"
)

// Property tests for the curve: Encode/Decode inversion across every
// (dims, bits) combination the package accepts, adjacency (unit curve steps
// move exactly one cell along one axis), and the boundary clamping that
// shard routing depends on — points on the universe faces, outside it, and
// with non-finite coordinates must all map into the valid index range.

func TestEncodeDecodeRoundTripAllDims(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for dims := 1; dims <= 6; dims++ {
		maxBits := MaxTotalBits / dims
		if maxBits > MaxBitsPerDim {
			maxBits = MaxBitsPerDim
		}
		for bits := 1; bits <= maxBits; bits++ {
			mask := uint64(1)<<uint(bits) - 1
			for trial := 0; trial < 50; trial++ {
				coords := make([]uint32, dims)
				for d := range coords {
					coords[d] = uint32(rng.Uint64() & mask)
				}
				idx := Encode(coords, bits)
				if max := uint64(1)<<uint(dims*bits) - 1; idx > max {
					t.Fatalf("dims=%d bits=%d: Encode(%v) = %d exceeds max %d", dims, bits, coords, idx, max)
				}
				back := Decode(idx, dims, bits)
				for d := range coords {
					if back[d] != coords[d] {
						t.Fatalf("dims=%d bits=%d: round trip %v -> %d -> %v", dims, bits, coords, idx, back)
					}
				}
			}
		}
	}
}

func TestDecodeEncodeRoundTripAllIndices(t *testing.T) {
	// Small enough orders to enumerate the whole curve: every index must
	// decode to coordinates that encode back to it (bijectivity).
	cases := []struct{ dims, bits int }{{1, 6}, {2, 4}, {3, 3}, {4, 2}, {5, 2}}
	for _, tc := range cases {
		total := uint64(1) << uint(tc.dims*tc.bits)
		for idx := uint64(0); idx < total; idx++ {
			coords := Decode(idx, tc.dims, tc.bits)
			if got := Encode(coords, tc.bits); got != idx {
				t.Fatalf("dims=%d bits=%d: Decode(%d) = %v encodes to %d", tc.dims, tc.bits, idx, coords, got)
			}
		}
	}
}

func TestCurveAdjacencyAllDims(t *testing.T) {
	// Defining property of the Hilbert curve: consecutive indices differ in
	// exactly one coordinate, by exactly one cell.
	cases := []struct{ dims, bits int }{{1, 8}, {2, 5}, {3, 3}, {4, 2}}
	for _, tc := range cases {
		total := uint64(1) << uint(tc.dims*tc.bits)
		prev := Decode(0, tc.dims, tc.bits)
		for idx := uint64(1); idx < total; idx++ {
			cur := Decode(idx, tc.dims, tc.bits)
			dist := 0
			for d := range cur {
				diff := int64(cur[d]) - int64(prev[d])
				if diff < 0 {
					diff = -diff
				}
				dist += int(diff)
			}
			if dist != 1 {
				t.Fatalf("dims=%d bits=%d: step %d -> %d moves L1 distance %d (prev=%v cur=%v)",
					tc.dims, tc.bits, idx-1, idx, dist, prev, cur)
			}
			prev = cur
		}
	}
}

func TestEncodeMasksWideCoordinates(t *testing.T) {
	// Coordinates wider than the curve order must not leak into the index.
	for bits := 1; bits < 32; bits++ {
		mask := uint32(1)<<uint(bits) - 1
		wide := []uint32{math.MaxUint32, mask | 1<<uint(bits)}
		masked := []uint32{math.MaxUint32 & mask, mask & mask}
		if got, want := Encode(wide, bits), Encode(masked, bits); got != want {
			t.Fatalf("bits=%d: Encode with wide coords = %d, want %d", bits, got, want)
		}
		if idx := Encode(wide, bits); idx > uint64(1)<<uint(2*bits)-1 {
			t.Fatalf("bits=%d: Encode with wide coords overflows index range: %d", bits, idx)
		}
	}
}

func TestNewRejectsBitsAbove32(t *testing.T) {
	uni := geom.Rect{Lo: geom.Pt(0), Hi: geom.Pt(1)}
	if _, err := New(uni, 33); err == nil {
		t.Fatal("New accepted 33 bits for one dimension; uint32 cells cannot hold that")
	}
	if _, err := New(uni, 32); err != nil {
		t.Fatalf("New rejected 32 bits for one dimension: %v", err)
	}
}

func TestCurveIndexBoundaryClamping(t *testing.T) {
	uni := geom.Rect{Lo: geom.Pt(-10, -10), Hi: geom.Pt(10, 10)}
	for _, bits := range []int{1, 4, 16, 31} {
		c, err := New(uni, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		max := c.MaxIndex()
		pts := []geom.Point{
			geom.Pt(-10, -10), geom.Pt(10, 10), geom.Pt(10, -10), geom.Pt(-10, 10),
			geom.Pt(0, 10), geom.Pt(10, 0),
			geom.Pt(-1e30, 0), geom.Pt(1e30, 1e30), geom.Pt(0, -1e30),
			geom.Pt(math.Inf(1), math.Inf(-1)), geom.Pt(math.NaN(), 5), geom.Pt(math.NaN(), math.NaN()),
		}
		for _, p := range pts {
			idx := c.Index(p)
			if idx > max {
				t.Fatalf("bits=%d: Index(%v) = %d exceeds MaxIndex %d", bits, p, idx, max)
			}
		}
		// Clamping is projection onto the universe: an outside point and its
		// projection must land on the same cell.
		if got, want := c.Index(geom.Pt(1e30, 3)), c.Index(geom.Pt(10, 3)); got != want {
			t.Fatalf("bits=%d: outside point %d != projected point %d", bits, got, want)
		}
		if got, want := c.Index(geom.Pt(math.Inf(-1), math.Inf(1))), c.Index(geom.Pt(-10, 10)); got != want {
			t.Fatalf("bits=%d: infinite point %d != corner %d", bits, got, want)
		}
	}
}

func TestCurveIndexMonotoneOnAxis(t *testing.T) {
	// Along one axis with the other fixed at Lo, the first coordinate's cell
	// is non-decreasing in the point's position; combined with round-trip
	// exactness this pins the cell quantisation (locality at cell level).
	uni := geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(1, 1)}
	c, err := New(uni, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint32(0)
	for i := 0; i <= 1000; i++ {
		p := geom.Pt(float64(i)/1000, 0)
		cell := Decode(c.Index(p), 2, 8)[0]
		if cell < prev {
			t.Fatalf("cell coordinate decreased along the axis: %d after %d at x=%v", cell, prev, p[0])
		}
		prev = cell
	}
	if prev != uint32(1)<<8-1 {
		t.Fatalf("x=Hi maps to cell %d, want %d", prev, uint32(1)<<8-1)
	}
}

func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), 3, 8)
	f.Add(uint32(255), uint32(17), uint32(1<<20), 2, 16)
	f.Add(uint32(math.MaxUint32), uint32(math.MaxUint32), uint32(math.MaxUint32), 1, 32)
	f.Fuzz(func(t *testing.T, a, b, c uint32, dims, bits int) {
		if dims < 1 || dims > 3 {
			return
		}
		if bits < 1 || bits > MaxBitsPerDim || dims*bits > MaxTotalBits {
			return
		}
		mask := uint32(math.MaxUint32)
		if bits < 32 {
			mask = uint32(1)<<uint(bits) - 1
		}
		coords := []uint32{a & mask, b & mask, c & mask}[:dims]
		idx := Encode(coords, bits)
		if dims*bits < 64 && idx > uint64(1)<<uint(dims*bits)-1 {
			t.Fatalf("Encode(%v, %d) = %d out of range", coords, bits, idx)
		}
		back := Decode(idx, dims, bits)
		for d := range coords {
			if back[d] != coords[d] {
				t.Fatalf("round trip %v -> %d -> %v (dims=%d bits=%d)", coords, idx, back, dims, bits)
			}
		}
	})
}
