// Package hilbert implements the Hilbert space-filling curve in arbitrary
// dimensionality, used by the Hilbert R-tree (HR-tree) variant to order
// spatially-near objects before packing them into leaves.
//
// The implementation follows Skilling's transpose algorithm ("Programming
// the Hilbert curve", AIP 2004): coordinates are mapped to a transposed
// Hilbert representation with Gray-code untangling and then bit-interleaved
// into a single integer index. Encode and Decode are exact inverses for all
// coordinates smaller than 2^bits per dimension.
package hilbert

import (
	"errors"
	"fmt"

	"cbb/internal/geom"
)

// MaxTotalBits is the largest index width supported (dims*bits must not
// exceed it so that indices fit into a uint64).
const MaxTotalBits = 63

// MaxBitsPerDim is the largest curve order per dimension: cell coordinates
// are uint32, so more than 32 bits per axis cannot be represented.
const MaxBitsPerDim = 32

// Curve maps points in a fixed bounding universe to positions on a Hilbert
// curve of a given order. It is safe for concurrent use.
type Curve struct {
	dims     int
	bits     int
	universe geom.Rect
	scale    []float64
}

// New creates a curve of the given order (bits per dimension) over the given
// universe rectangle. Points outside the universe are clamped onto it.
func New(universe geom.Rect, bits int) (*Curve, error) {
	dims := universe.Dims()
	if dims < 1 {
		return nil, errors.New("hilbert: universe must have at least one dimension")
	}
	if bits < 1 || dims*bits > MaxTotalBits {
		return nil, fmt.Errorf("hilbert: dims*bits = %d exceeds %d", dims*bits, MaxTotalBits)
	}
	if bits > MaxBitsPerDim {
		return nil, fmt.Errorf("hilbert: bits = %d exceeds %d per dimension", bits, MaxBitsPerDim)
	}
	if !universe.Valid() {
		return nil, errors.New("hilbert: invalid universe rectangle")
	}
	c := &Curve{dims: dims, bits: bits, universe: universe.Clone(), scale: make([]float64, dims)}
	maxCell := float64(uint64(1)<<uint(bits) - 1)
	for d := 0; d < dims; d++ {
		side := universe.Hi[d] - universe.Lo[d]
		if side <= 0 {
			c.scale[d] = 0
		} else {
			c.scale[d] = maxCell / side
		}
	}
	return c, nil
}

// Dims returns the dimensionality of the curve.
func (c *Curve) Dims() int { return c.dims }

// Bits returns the curve order (bits per dimension).
func (c *Curve) Bits() int { return c.bits }

// Index returns the Hilbert index of a point (clamped to the universe).
// NaN coordinates map to cell 0 of their axis rather than producing an
// undefined float-to-integer conversion.
func (c *Curve) Index(p geom.Point) uint64 {
	var buf [8]uint32
	coords := buf[:]
	if c.dims > len(buf) {
		coords = make([]uint32, c.dims)
	} else {
		coords = coords[:c.dims]
	}
	maxCell := float64(uint64(1)<<uint(c.bits) - 1)
	for d := 0; d < c.dims; d++ {
		v := p[d]
		if v < c.universe.Lo[d] {
			v = c.universe.Lo[d]
		}
		if v > c.universe.Hi[d] {
			v = c.universe.Hi[d]
		}
		// Clamp the scaled cell as well: float rounding can push a point on
		// the universe boundary one cell past maxCell, and a NaN coordinate
		// survives the interval clamp above (every comparison is false).
		f := (v - c.universe.Lo[d]) * c.scale[d]
		if !(f > 0) { // also catches NaN
			f = 0
		}
		if f > maxCell {
			f = maxCell
		}
		coords[d] = uint32(f)
	}
	// Coordinates are freshly clamped below 2^bits, so encode in place
	// without Encode's defensive copy and masking.
	axesToTranspose(coords, c.bits)
	return interleave(coords, c.bits)
}

// MaxIndex returns the largest index the curve can produce: 2^(dims*bits)-1.
func (c *Curve) MaxIndex() uint64 {
	return uint64(1)<<uint(c.dims*c.bits) - 1
}

// IndexRect returns the Hilbert index of the centre of a rectangle, which is
// how the Hilbert R-tree orders data rectangles. The centre is computed
// inline so ordering large entry sets allocates nothing.
func (c *Curve) IndexRect(r geom.Rect) uint64 {
	var buf [8]float64
	ctr := buf[:]
	if c.dims > len(buf) {
		ctr = make([]float64, c.dims)
	} else {
		ctr = ctr[:c.dims]
	}
	for d := 0; d < c.dims; d++ {
		ctr[d] = (r.Lo[d] + r.Hi[d]) / 2
	}
	return c.Index(geom.Point(ctr))
}

// Encode converts discrete coordinates (each < 2^bits) into a Hilbert index.
// Coordinates wider than bits are masked down to their low bits so that the
// result always lies in [0, 2^(dims*bits)). The slice is not modified.
func Encode(coords []uint32, bits int) uint64 {
	n := len(coords)
	x := make([]uint32, n)
	copy(x, coords)
	if bits < 32 {
		mask := uint32(1)<<uint(bits) - 1
		for i := range x {
			x[i] &= mask
		}
	}
	axesToTranspose(x, bits)
	return interleave(x, bits)
}

// Decode converts a Hilbert index back into discrete coordinates, the exact
// inverse of Encode.
func Decode(index uint64, dims, bits int) []uint32 {
	x := deinterleave(index, dims, bits)
	transposeToAxes(x, bits)
	return x
}

// axesToTranspose applies Skilling's in-place transformation from Cartesian
// coordinates to the transposed Hilbert representation.
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << uint(bits-1)
	// Inverse undo of the excess work done by transposeToAxes.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	m := uint32(2) << uint(bits-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index, most
// significant bit of x[0] first.
func interleave(x []uint32, bits int) uint64 {
	n := len(x)
	var out uint64
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < n; i++ {
			out = (out << 1) | uint64((x[i]>>uint(b))&1)
		}
	}
	return out
}

// deinterleave is the inverse of interleave.
func deinterleave(index uint64, dims, bits int) []uint32 {
	x := make([]uint32, dims)
	pos := dims*bits - 1
	for b := bits - 1; b >= 0; b-- {
		for i := 0; i < dims; i++ {
			x[i] |= uint32((index>>uint(pos))&1) << uint(b)
			pos--
		}
	}
	return x
}
