// Package join implements the two spatial-join strategies evaluated in the
// paper: the Index Nested Loop Join (INLJ), used when only one input is
// indexed, and the Synchronised Tree Traversal (STT) of Brinkhoff et al.,
// used when both inputs are indexed. Both strategies run with or without
// clipped bounding boxes; with clipping, a child node is skipped when the
// probe rectangle (INLJ) or the partner subtree's MBB (STT) lies entirely in
// the child's clipped dead space.
//
// Both strategies also come in parallel variants (PINLJ, PSTT) that fan the
// work out over a pool of goroutines: PINLJ partitions the probe set, PSTT
// partitions the admissible pairs of root children. Every worker charges a
// private storage.Counter, so the reported I/O is exact and — like the pair
// count — identical to the sequential run regardless of scheduling.
package join

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/parallel"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Pair is one result of a spatial join: two object ids whose rectangles
// intersect.
type Pair struct {
	Left  rtree.ObjectID
	Right rtree.ObjectID
}

// Result summarises a join run.
type Result struct {
	// Pairs is the number of intersecting pairs found.
	Pairs int64
	// IO is the node-access delta incurred by the join (leaf and directory
	// reads across all participating trees).
	IO storage.Snapshot
}

// INLJ performs an index nested loop join: every probe rectangle is run as a
// range query against the indexed (and optionally clipped) input. When idx
// is nil the plain tree is probed; otherwise the clipped search path is
// used. The visit callback is optional.
func INLJ(tree *rtree.Tree, idx *clipindex.Index, probes []rtree.Item, visit func(Pair)) (Result, error) {
	return PINLJ(tree, idx, probes, 1, visit)
}

// PINLJ is INLJ fanned out over a pool of worker goroutines, each probing a
// partition of the probe set with a private I/O counter; workers <= 0 uses
// GOMAXPROCS and 1 reproduces the sequential INLJ exactly. The merged I/O is
// folded back into the tree's counter, so accumulated IOStats match a
// sequential run. When visit is non-nil it is serialised by a mutex but the
// pair order across probes is unspecified for workers > 1.
func PINLJ(tree *rtree.Tree, idx *clipindex.Index, probes []rtree.Item, workers int, visit func(Pair)) (Result, error) {
	if tree == nil {
		return Result{}, errors.New("join: INLJ requires an indexed input")
	}
	if idx != nil && idx.Tree() != tree {
		return Result{}, errors.New("join: clip index does not belong to the probed tree")
	}
	workers = parallel.EffectiveWorkers(workers, len(probes))
	if len(probes) == 0 {
		return Result{}, nil
	}

	emit := serializedVisit(visit, workers)

	var pairs int64
	snapshots := parallel.ForEachChunk(len(probes), workers, func(_, start, end int, c *storage.Counter) {
		var local int64
		for i := start; i < end; i++ {
			probe := probes[i]
			found := func(id rtree.ObjectID, _ geom.Rect) bool {
				local++
				if emit != nil {
					emit(Pair{Left: id, Right: probe.Object})
				}
				return true
			}
			if idx != nil {
				idx.SearchCounted(probe.Rect, c, found)
			} else {
				tree.SearchCounted(probe.Rect, c, found)
			}
		}
		atomic.AddInt64(&pairs, local)
	})

	res := Result{Pairs: pairs}
	for _, s := range snapshots {
		res.IO = res.IO.Add(s)
	}
	tree.Counter().Add(res.IO)
	return res, nil
}

// STT performs a synchronised tree traversal join of two indexed inputs.
// When clip indexes are provided (either may be nil), the traversal applies
// the dominance tests of Algorithm 2 in both directions before descending
// into a pair of subtrees: a subtree pair is pruned when either side's
// overlap with the other's MBB lies entirely in clipped dead space.
//
// Both trees must use distinct I/O counters or the same counter; the
// reported IO is the sum of the I/O charged to both trees (counted once if
// shared).
func STT(left, right *rtree.Tree, leftIdx, rightIdx *clipindex.Index, visit func(Pair)) (Result, error) {
	return PSTT(left, right, leftIdx, rightIdx, 1, visit)
}

// PSTT is STT fanned out over a pool of worker goroutines: the roots are
// read once, the admissible pairs of root children are partitioned across
// the workers, and each worker traverses its pairs with private I/O
// counters; workers <= 0 uses GOMAXPROCS and 1 reproduces the sequential
// STT exactly. Pair counts and total I/O are identical to the sequential
// join. When visit is non-nil it is serialised by a mutex but the pair
// order is unspecified for workers > 1. Trees whose root is a leaf fall
// back to the sequential traversal.
func PSTT(left, right *rtree.Tree, leftIdx, rightIdx *clipindex.Index, workers int, visit func(Pair)) (Result, error) {
	if left == nil || right == nil {
		return Result{}, errors.New("join: STT requires two indexed inputs")
	}
	if left.Dims() != right.Dims() {
		return Result{}, errors.New("join: dimensionality mismatch")
	}
	if leftIdx != nil && leftIdx.Tree() != left {
		return Result{}, errors.New("join: left clip index does not belong to the left tree")
	}
	if rightIdx != nil && rightIdx.Tree() != right {
		return Result{}, errors.New("join: right clip index does not belong to the right tree")
	}
	if left.RootID() == rtree.InvalidNode || right.RootID() == rtree.InvalidNode {
		return Result{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	shared := left.Counter() == right.Counter()
	// newJoiner builds a traversal state charging private counters; leftCtr
	// may be supplied (the per-worker counter of ForEachChunk) or nil for a
	// fresh one. With a shared tree counter one private counter receives
	// both sides so the I/O is counted once, as in the sequential join.
	newJoiner := func(emit func(Pair), leftCtr *storage.Counter) *sttJoiner {
		if leftCtr == nil {
			leftCtr = &storage.Counter{}
		}
		j := &sttJoiner{
			left: left, right: right,
			leftIdx:  leftIdx,
			rightIdx: rightIdx,
			visit:    emit,
			leftCtr:  leftCtr,
		}
		if shared {
			j.rightCtr = j.leftCtr
		} else {
			j.rightCtr = &storage.Counter{}
		}
		return j
	}
	// finalize folds the joiners' private counters back into the trees'
	// counters and sums the joint I/O (counted once when shared).
	finalize := func(joiners ...*sttJoiner) Result {
		var res Result
		var leftIO, rightIO storage.Snapshot
		for _, j := range joiners {
			res.Pairs += j.pairs
			leftIO = leftIO.Add(j.leftCtr.Snapshot())
			if !shared {
				rightIO = rightIO.Add(j.rightCtr.Snapshot())
			}
		}
		left.Counter().Add(leftIO)
		if !shared {
			right.Counter().Add(rightIO)
		}
		res.IO = leftIO.Add(rightIO)
		return res
	}

	linfo, lerr := left.Node(left.RootID())
	rinfo, rerr := right.Node(right.RootID())
	if workers <= 1 || lerr != nil || rerr != nil || linfo.Leaf || rinfo.Leaf {
		j := newJoiner(visit, nil)
		j.joinNodes(left.RootID(), right.RootID())
		return finalize(j), nil
	}

	// The sequential traversal reads both roots, then recurses into every
	// admissible pair of root children; partition exactly those pairs.
	root := newJoiner(nil, nil)
	root.chargeRead(left, linfo)
	root.chargeRead(right, rinfo)
	type task struct{ l, r rtree.NodeID }
	var tasks []task
	for i := range linfo.Children {
		for k := range rinfo.Children {
			lc, rc := linfo.Children[i], rinfo.Children[k]
			if root.admissible(lc.Child, lc.Rect, rc.Child, rc.Rect) {
				tasks = append(tasks, task{lc.Child, rc.Child})
			}
		}
	}
	workers = parallel.EffectiveWorkers(workers, len(tasks))
	if len(tasks) == 0 {
		return finalize(root), nil
	}

	emit := serializedVisit(visit, workers)
	joiners := make([]*sttJoiner, workers)
	parallel.ForEachChunk(len(tasks), workers, func(w, start, end int, c *storage.Counter) {
		j := joiners[w]
		if j == nil {
			j = newJoiner(emit, c)
			joiners[w] = j
		}
		for i := start; i < end; i++ {
			j.joinNodes(tasks[i].l, tasks[i].r)
		}
	})
	live := []*sttJoiner{root}
	for _, j := range joiners {
		if j != nil {
			live = append(live, j)
		}
	}
	return finalize(live...), nil
}

// serializedVisit wraps a join callback in a mutex when more than one worker
// will emit pairs, so user callbacks never run concurrently; a nil visit or
// a single worker passes through untouched.
func serializedVisit(visit func(Pair), workers int) func(Pair) {
	if visit == nil || workers <= 1 {
		return visit
	}
	var mu sync.Mutex
	return func(p Pair) {
		mu.Lock()
		visit(p)
		mu.Unlock()
	}
}

type sttJoiner struct {
	left, right *rtree.Tree
	// leftIdx and rightIdx are the optional clip indexes of the two inputs;
	// clip points are looked up through Index.Clips, the dense admission
	// path (nil-safe on a nil index).
	leftIdx, rightIdx *clipindex.Index
	// leftCtr and rightCtr receive the node accesses of the respective tree;
	// they point at the same counter when the trees share one.
	leftCtr, rightCtr *storage.Counter
	visit             func(Pair)
	pairs             int64
}

// admissible applies the clipped intersection test in both directions for a
// candidate pair of node MBBs: the pair survives only if neither side's
// clipped bounding box certifies the other's MBB as dead space.
func (j *sttJoiner) admissible(leftID rtree.NodeID, leftMBB geom.Rect, rightID rtree.NodeID, rightMBB geom.Rect) bool {
	if !leftMBB.Intersects(rightMBB) {
		return false
	}
	if clips := j.leftIdx.Clips(leftID); len(clips) > 0 {
		if !core.Intersects(leftMBB, clips, rightMBB, core.SelectorQuery) {
			return false
		}
	}
	if clips := j.rightIdx.Clips(rightID); len(clips) > 0 {
		if !core.Intersects(rightMBB, clips, leftMBB, core.SelectorQuery) {
			return false
		}
	}
	return true
}

func (j *sttJoiner) joinNodes(leftID, rightID rtree.NodeID) {
	linfo, err := j.left.Node(leftID)
	if err != nil {
		return
	}
	rinfo, err := j.right.Node(rightID)
	if err != nil {
		return
	}
	j.chargeRead(j.left, linfo)
	j.chargeRead(j.right, rinfo)

	switch {
	case linfo.Leaf && rinfo.Leaf:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				if linfo.Children[i].Rect.Intersects(rinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: linfo.Children[i].Object, Right: rinfo.Children[k].Object})
					}
				}
			}
		}
	case linfo.Leaf:
		// Descend only the right tree.
		for k := range rinfo.Children {
			child := rinfo.Children[k]
			if j.admissible(linfo.ID, linfo.MBB, child.Child, child.Rect) {
				j.joinLeafWithNode(linfo, j.right, child.Child, j.rightIdx)
			}
		}
	case rinfo.Leaf:
		for i := range linfo.Children {
			child := linfo.Children[i]
			if j.admissible(child.Child, child.Rect, rinfo.ID, rinfo.MBB) {
				j.joinNodeWithLeaf(j.left, child.Child, j.leftIdx, rinfo)
			}
		}
	default:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				lc, rc := linfo.Children[i], rinfo.Children[k]
				if j.admissible(lc.Child, lc.Rect, rc.Child, rc.Rect) {
					j.joinNodes(lc.Child, rc.Child)
				}
			}
		}
	}
}

// joinLeafWithNode joins an already-loaded leaf with a (possibly deeper)
// subtree of the other tree.
func (j *sttJoiner) joinLeafWithNode(leaf rtree.NodeInfo, other *rtree.Tree, otherID rtree.NodeID, otherIdx *clipindex.Index) {
	oinfo, err := other.Node(otherID)
	if err != nil {
		return
	}
	j.chargeRead(other, oinfo)
	if oinfo.Leaf {
		for i := range leaf.Children {
			for k := range oinfo.Children {
				if leaf.Children[i].Rect.Intersects(oinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: leaf.Children[i].Object, Right: oinfo.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for k := range oinfo.Children {
		child := oinfo.Children[k]
		if !leaf.MBB.Intersects(child.Rect) {
			continue
		}
		if clips := otherIdx.Clips(child.Child); len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinLeafWithNode(leaf, other, child.Child, otherIdx)
	}
}

// joinNodeWithLeaf mirrors joinLeafWithNode with the leaf on the right.
func (j *sttJoiner) joinNodeWithLeaf(other *rtree.Tree, otherID rtree.NodeID, otherIdx *clipindex.Index, leaf rtree.NodeInfo) {
	oinfo, err := other.Node(otherID)
	if err != nil {
		return
	}
	j.chargeRead(other, oinfo)
	if oinfo.Leaf {
		for i := range oinfo.Children {
			for k := range leaf.Children {
				if oinfo.Children[i].Rect.Intersects(leaf.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: oinfo.Children[i].Object, Right: leaf.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for i := range oinfo.Children {
		child := oinfo.Children[i]
		if !child.Rect.Intersects(leaf.MBB) {
			continue
		}
		if clips := otherIdx.Clips(child.Child); len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinNodeWithLeaf(other, child.Child, otherIdx, leaf)
	}
}

func (j *sttJoiner) chargeRead(t *rtree.Tree, info rtree.NodeInfo) {
	c := j.rightCtr
	if t == j.left {
		c = j.leftCtr
	}
	t.ChargeRead(info.ID, info.Leaf, c)
}
