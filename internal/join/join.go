// Package join implements the two spatial-join strategies evaluated in the
// paper: the Index Nested Loop Join (INLJ), used when only one input is
// indexed, and the Synchronised Tree Traversal (STT) of Brinkhoff et al.,
// used when both inputs are indexed. Both strategies run with or without
// clipped bounding boxes; with clipping, a child node is skipped when the
// probe rectangle (INLJ) or the partner subtree's MBB (STT) lies entirely in
// the child's clipped dead space.
//
// Both strategies also come in parallel variants (PINLJ, PSTT) that fan the
// work out over a pool of goroutines: PINLJ partitions the probe set, PSTT
// partitions the admissible pairs of root children. Every worker charges a
// private storage.Counter, so the reported I/O is exact and — like the pair
// count — identical to the sequential run regardless of scheduling.
package join

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/parallel"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Pair is one result of a spatial join: two object ids whose rectangles
// intersect.
type Pair struct {
	Left  rtree.ObjectID
	Right rtree.ObjectID
}

// Result summarises a join run.
type Result struct {
	// Pairs is the number of intersecting pairs found.
	Pairs int64
	// IO is the node-access delta incurred by the join (leaf and directory
	// reads across all participating trees).
	IO storage.Snapshot
}

// Side binds one join input to an epoch-consistent snapshot: the tree (for
// configuration and I/O accounting), the immutable tree version traversed,
// and — when the input is clipped — the clip snapshot of the same epoch.
// Bind resolves a live input to its current committed state; the cbb layer
// builds Sides from pinned read views so whole joins run against one
// snapshot regardless of concurrent writers.
type Side struct {
	Tree *rtree.Tree
	V    *rtree.Version
	Snap *clipindex.Snap
}

// Bind resolves a (tree, optional clip index) input to its last committed
// snapshot. For a clipped input the tree version is taken from the clip
// snapshot, so nodes and clip points are guaranteed to share an epoch.
func Bind(tree *rtree.Tree, idx *clipindex.Index) Side {
	if idx != nil {
		s := idx.Snap()
		return Side{Tree: tree, V: s.Version(), Snap: s}
	}
	return Side{Tree: tree, V: tree.CurrentVersion()}
}

// validate checks that the side's pieces belong together.
func (s *Side) validate(name string) error {
	if s.Tree == nil || s.V == nil {
		return fmt.Errorf("join: %s input is not bound to a tree snapshot", name)
	}
	if s.V.Tree() != s.Tree {
		return fmt.Errorf("join: %s version does not belong to the %s tree", name, name)
	}
	if s.Snap != nil && s.Snap.Version() != s.V {
		return fmt.Errorf("join: %s clip snapshot is from a different epoch than the %s version", name, name)
	}
	return nil
}

// search runs one range query against the side's snapshot (clipped when the
// side has a clip snapshot), charging node accesses to c.
func (s *Side) search(q geom.Rect, c *storage.Counter, visit func(rtree.ObjectID, geom.Rect) bool) {
	if s.Snap != nil {
		s.Snap.SearchCounted(q, c, visit)
		return
	}
	s.V.SearchCounted(q, c, visit)
}

// clips returns the side's clip points for a node (nil when unclipped).
func (s *Side) clips(id rtree.NodeID) []core.ClipPoint { return s.Snap.Clips(id) }

// INLJ performs an index nested loop join: every probe rectangle is run as a
// range query against the indexed (and optionally clipped) input. When idx
// is nil the plain tree is probed; otherwise the clipped search path is
// used. The visit callback is optional.
func INLJ(tree *rtree.Tree, idx *clipindex.Index, probes []rtree.Item, visit func(Pair)) (Result, error) {
	return PINLJ(tree, idx, probes, 1, visit)
}

// PINLJ is INLJ fanned out over a pool of worker goroutines, each probing a
// partition of the probe set with a private I/O counter; workers <= 0 uses
// GOMAXPROCS and 1 reproduces the sequential INLJ exactly. The merged I/O is
// folded back into the tree's counter, so accumulated IOStats match a
// sequential run. When visit is non-nil it is serialised by a mutex but the
// pair order across probes is unspecified for workers > 1.
func PINLJ(tree *rtree.Tree, idx *clipindex.Index, probes []rtree.Item, workers int, visit func(Pair)) (Result, error) {
	if tree == nil {
		return Result{}, errors.New("join: INLJ requires an indexed input")
	}
	if idx != nil && idx.Tree() != tree {
		return Result{}, errors.New("join: clip index does not belong to the probed tree")
	}
	return PINLJSide(Bind(tree, idx), probes, workers, visit)
}

// PINLJSide is PINLJ against an explicitly bound snapshot of the indexed
// input — the entry point of view-based joins: every probe runs against the
// same pinned epoch, so the result is exactly what a fully quiesced tree at
// that epoch would produce even while a writer commits concurrently.
func PINLJSide(in Side, probes []rtree.Item, workers int, visit func(Pair)) (Result, error) {
	if err := in.validate("indexed"); err != nil {
		return Result{}, err
	}
	workers = parallel.EffectiveWorkers(workers, len(probes))
	if len(probes) == 0 {
		return Result{}, nil
	}

	emit := serializedVisit(visit, workers)

	var pairs int64
	snapshots := parallel.ForEachChunk(len(probes), workers, func(_, start, end int, c *storage.Counter) {
		var local int64
		for i := start; i < end; i++ {
			probe := probes[i]
			in.search(probe.Rect, c, func(id rtree.ObjectID, _ geom.Rect) bool {
				local++
				if emit != nil {
					emit(Pair{Left: id, Right: probe.Object})
				}
				return true
			})
		}
		atomic.AddInt64(&pairs, local)
	})

	res := Result{Pairs: pairs}
	for _, s := range snapshots {
		res.IO = res.IO.Add(s)
	}
	in.Tree.Counter().Add(res.IO)
	return res, nil
}

// PINLJSides is PINLJ against a set of bound snapshots that together form
// one logical index — the entry point of sharded joins, where every shard
// contributes one Side and each object lives in exactly one shard. Every
// probe is run against every side whose root MBB it intersects (the
// directory-level skip is not charged as I/O, mirroring how the sharded
// engine routes queries); the pair set is the union over sides, exact and
// duplicate-free because the sides partition the objects. The per-side I/O
// is folded back into each side's tree counter, so shard-level IOStats stay
// exact regardless of worker count.
func PINLJSides(sides []Side, probes []rtree.Item, workers int, visit func(Pair)) (Result, error) {
	for i := range sides {
		if err := sides[i].validate("indexed"); err != nil {
			return Result{}, err
		}
	}
	workers = parallel.EffectiveWorkers(workers, len(probes))
	if len(probes) == 0 || len(sides) == 0 {
		return Result{}, nil
	}

	emit := serializedVisit(visit, workers)

	// One private counter per (worker, side) cell: every node access is
	// charged to exactly one cell, so the fold below is exact whether the
	// sides share one tree counter (the sharded engine) or use distinct ones.
	ctrs := make([][]storage.Counter, workers)
	for w := range ctrs {
		ctrs[w] = make([]storage.Counter, len(sides))
	}

	var pairs int64
	parallel.ForEachChunk(len(probes), workers, func(w, start, end int, _ *storage.Counter) {
		var local int64
		for i := start; i < end; i++ {
			probe := probes[i]
			for si := range sides {
				s := &sides[si]
				if s.V.RootID() == rtree.InvalidNode || !s.V.RootMBBIntersects(probe.Rect) {
					continue
				}
				s.search(probe.Rect, &ctrs[w][si], func(id rtree.ObjectID, _ geom.Rect) bool {
					local++
					if emit != nil {
						emit(Pair{Left: id, Right: probe.Object})
					}
					return true
				})
			}
		}
		atomic.AddInt64(&pairs, local)
	})

	res := Result{Pairs: pairs}
	for si := range sides {
		var io storage.Snapshot
		for w := range ctrs {
			io = io.Add(ctrs[w][si].Snapshot())
		}
		sides[si].Tree.Counter().Add(io)
		res.IO = res.IO.Add(io)
	}
	return res, nil
}

// SidePair is one (left, right) input combination of a sharded STT join.
type SidePair struct {
	Left, Right Side
}

// PSTTSidePairs runs a synchronised tree traversal join over a set of side
// pairs — the cross product of intersecting shards when both inputs are
// sharded — and sums the results. Because each object lives in exactly one
// shard per input, each intersecting object pair appears in exactly one
// side pair, so the summed pair count equals the unsharded join's. Pairs
// are partitioned over the workers; each pair's traversal runs sequentially
// and folds its I/O into its own trees' counters, exactly like PSTTSides.
func PSTTSidePairs(sidePairs []SidePair, workers int, visit func(Pair)) (Result, error) {
	for i := range sidePairs {
		if err := sidePairs[i].Left.validate("left"); err != nil {
			return Result{}, err
		}
		if err := sidePairs[i].Right.validate("right"); err != nil {
			return Result{}, err
		}
	}
	workers = parallel.EffectiveWorkers(workers, len(sidePairs))
	if len(sidePairs) == 0 {
		return Result{}, nil
	}

	emit := serializedVisit(visit, workers)

	results := make([]Result, len(sidePairs))
	var firstErr atomic.Pointer[error]
	parallel.ForEachChunk(len(sidePairs), workers, func(_, start, end int, _ *storage.Counter) {
		for i := start; i < end; i++ {
			r, err := PSTTSides(sidePairs[i].Left, sidePairs[i].Right, 1, emit)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			results[i] = r
		}
	})
	if errp := firstErr.Load(); errp != nil {
		return Result{}, *errp
	}

	var res Result
	for _, r := range results {
		res.Pairs += r.Pairs
		res.IO = res.IO.Add(r.IO)
	}
	return res, nil
}

// STT performs a synchronised tree traversal join of two indexed inputs.
// When clip indexes are provided (either may be nil), the traversal applies
// the dominance tests of Algorithm 2 in both directions before descending
// into a pair of subtrees: a subtree pair is pruned when either side's
// overlap with the other's MBB lies entirely in clipped dead space.
//
// Both trees must use distinct I/O counters or the same counter; the
// reported IO is the sum of the I/O charged to both trees (counted once if
// shared).
func STT(left, right *rtree.Tree, leftIdx, rightIdx *clipindex.Index, visit func(Pair)) (Result, error) {
	return PSTT(left, right, leftIdx, rightIdx, 1, visit)
}

// PSTT is STT fanned out over a pool of worker goroutines: the roots are
// read once, the admissible pairs of root children are partitioned across
// the workers, and each worker traverses its pairs with private I/O
// counters; workers <= 0 uses GOMAXPROCS and 1 reproduces the sequential
// STT exactly. Pair counts and total I/O are identical to the sequential
// join. When visit is non-nil it is serialised by a mutex but the pair
// order is unspecified for workers > 1. Trees whose root is a leaf fall
// back to the sequential traversal.
func PSTT(left, right *rtree.Tree, leftIdx, rightIdx *clipindex.Index, workers int, visit func(Pair)) (Result, error) {
	if left == nil || right == nil {
		return Result{}, errors.New("join: STT requires two indexed inputs")
	}
	if leftIdx != nil && leftIdx.Tree() != left {
		return Result{}, errors.New("join: left clip index does not belong to the left tree")
	}
	if rightIdx != nil && rightIdx.Tree() != right {
		return Result{}, errors.New("join: right clip index does not belong to the right tree")
	}
	return PSTTSides(Bind(left, leftIdx), Bind(right, rightIdx), workers, visit)
}

// PSTTSides is PSTT against two explicitly bound snapshots — the entry point
// of view-based joins: both traversals run against pinned epochs, one per
// input, unaffected by concurrent writer commits on either tree.
func PSTTSides(ls, rs Side, workers int, visit func(Pair)) (Result, error) {
	if err := ls.validate("left"); err != nil {
		return Result{}, err
	}
	if err := rs.validate("right"); err != nil {
		return Result{}, err
	}
	if ls.Tree.Dims() != rs.Tree.Dims() {
		return Result{}, errors.New("join: dimensionality mismatch")
	}
	if ls.V.RootID() == rtree.InvalidNode || rs.V.RootID() == rtree.InvalidNode {
		return Result{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	shared := ls.Tree.Counter() == rs.Tree.Counter()
	// newJoiner builds a traversal state charging private counters; leftCtr
	// may be supplied (the per-worker counter of ForEachChunk) or nil for a
	// fresh one. With a shared tree counter one private counter receives
	// both sides so the I/O is counted once, as in the sequential join.
	newJoiner := func(emit func(Pair), leftCtr *storage.Counter) *sttJoiner {
		if leftCtr == nil {
			leftCtr = &storage.Counter{}
		}
		j := &sttJoiner{
			left:    ls,
			right:   rs,
			visit:   emit,
			leftCtr: leftCtr,
		}
		if shared {
			j.rightCtr = j.leftCtr
		} else {
			j.rightCtr = &storage.Counter{}
		}
		return j
	}
	// finalize folds the joiners' private counters back into the trees'
	// counters and sums the joint I/O (counted once when shared).
	finalize := func(joiners ...*sttJoiner) Result {
		var res Result
		var leftIO, rightIO storage.Snapshot
		for _, j := range joiners {
			res.Pairs += j.pairs
			leftIO = leftIO.Add(j.leftCtr.Snapshot())
			if !shared {
				rightIO = rightIO.Add(j.rightCtr.Snapshot())
			}
		}
		ls.Tree.Counter().Add(leftIO)
		if !shared {
			rs.Tree.Counter().Add(rightIO)
		}
		res.IO = leftIO.Add(rightIO)
		return res
	}

	linfo, lerr := ls.V.Node(ls.V.RootID())
	rinfo, rerr := rs.V.Node(rs.V.RootID())
	if workers <= 1 || lerr != nil || rerr != nil || linfo.Leaf || rinfo.Leaf {
		j := newJoiner(visit, nil)
		j.joinNodes(ls.V.RootID(), rs.V.RootID())
		return finalize(j), nil
	}

	// The sequential traversal reads both roots, then recurses into every
	// admissible pair of root children; partition exactly those pairs.
	root := newJoiner(nil, nil)
	root.chargeLeft(linfo)
	root.chargeRight(rinfo)
	type task struct{ l, r rtree.NodeID }
	var tasks []task
	for i := range linfo.Children {
		for k := range rinfo.Children {
			lc, rc := linfo.Children[i], rinfo.Children[k]
			if root.admissible(lc.Child, lc.Rect, rc.Child, rc.Rect) {
				tasks = append(tasks, task{lc.Child, rc.Child})
			}
		}
	}
	workers = parallel.EffectiveWorkers(workers, len(tasks))
	if len(tasks) == 0 {
		return finalize(root), nil
	}

	emit := serializedVisit(visit, workers)
	joiners := make([]*sttJoiner, workers)
	parallel.ForEachChunk(len(tasks), workers, func(w, start, end int, c *storage.Counter) {
		j := joiners[w]
		if j == nil {
			j = newJoiner(emit, c)
			joiners[w] = j
		}
		for i := start; i < end; i++ {
			j.joinNodes(tasks[i].l, tasks[i].r)
		}
	})
	live := []*sttJoiner{root}
	for _, j := range joiners {
		if j != nil {
			live = append(live, j)
		}
	}
	return finalize(live...), nil
}

// serializedVisit wraps a join callback in a mutex when more than one worker
// will emit pairs, so user callbacks never run concurrently; a nil visit or
// a single worker passes through untouched.
func serializedVisit(visit func(Pair), workers int) func(Pair) {
	if visit == nil || workers <= 1 {
		return visit
	}
	var mu sync.Mutex
	return func(p Pair) {
		mu.Lock()
		visit(p)
		mu.Unlock()
	}
}

type sttJoiner struct {
	// left and right are the two inputs, each bound to one epoch-consistent
	// snapshot (tree version plus optional clip snapshot); clip points are
	// looked up through Side.clips, the dense admission path (nil-safe on
	// an unclipped side).
	left, right Side
	// leftCtr and rightCtr receive the node accesses of the respective tree;
	// they point at the same counter when the trees share one.
	leftCtr, rightCtr *storage.Counter
	visit             func(Pair)
	pairs             int64
}

// admissible applies the clipped intersection test in both directions for a
// candidate pair of node MBBs: the pair survives only if neither side's
// clipped bounding box certifies the other's MBB as dead space.
func (j *sttJoiner) admissible(leftID rtree.NodeID, leftMBB geom.Rect, rightID rtree.NodeID, rightMBB geom.Rect) bool {
	if !leftMBB.Intersects(rightMBB) {
		return false
	}
	if clips := j.left.clips(leftID); len(clips) > 0 {
		if !core.Intersects(leftMBB, clips, rightMBB, core.SelectorQuery) {
			return false
		}
	}
	if clips := j.right.clips(rightID); len(clips) > 0 {
		if !core.Intersects(rightMBB, clips, leftMBB, core.SelectorQuery) {
			return false
		}
	}
	return true
}

func (j *sttJoiner) joinNodes(leftID, rightID rtree.NodeID) {
	linfo, err := j.left.V.Node(leftID)
	if err != nil {
		return
	}
	rinfo, err := j.right.V.Node(rightID)
	if err != nil {
		return
	}
	j.chargeLeft(linfo)
	j.chargeRight(rinfo)

	switch {
	case linfo.Leaf && rinfo.Leaf:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				if linfo.Children[i].Rect.Intersects(rinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: linfo.Children[i].Object, Right: rinfo.Children[k].Object})
					}
				}
			}
		}
	case linfo.Leaf:
		// Descend only the right tree.
		for k := range rinfo.Children {
			child := rinfo.Children[k]
			if j.admissible(linfo.ID, linfo.MBB, child.Child, child.Rect) {
				j.joinLeafWithNode(linfo, &j.right, child.Child)
			}
		}
	case rinfo.Leaf:
		for i := range linfo.Children {
			child := linfo.Children[i]
			if j.admissible(child.Child, child.Rect, rinfo.ID, rinfo.MBB) {
				j.joinNodeWithLeaf(&j.left, child.Child, rinfo)
			}
		}
	default:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				lc, rc := linfo.Children[i], rinfo.Children[k]
				if j.admissible(lc.Child, lc.Rect, rc.Child, rc.Rect) {
					j.joinNodes(lc.Child, rc.Child)
				}
			}
		}
	}
}

// joinLeafWithNode joins an already-loaded leaf with a (possibly deeper)
// subtree of the other side.
func (j *sttJoiner) joinLeafWithNode(leaf rtree.NodeInfo, other *Side, otherID rtree.NodeID) {
	oinfo, err := other.V.Node(otherID)
	if err != nil {
		return
	}
	j.chargeSide(other, oinfo)
	if oinfo.Leaf {
		for i := range leaf.Children {
			for k := range oinfo.Children {
				if leaf.Children[i].Rect.Intersects(oinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: leaf.Children[i].Object, Right: oinfo.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for k := range oinfo.Children {
		child := oinfo.Children[k]
		if !leaf.MBB.Intersects(child.Rect) {
			continue
		}
		if clips := other.clips(child.Child); len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinLeafWithNode(leaf, other, child.Child)
	}
}

// joinNodeWithLeaf mirrors joinLeafWithNode with the leaf on the right.
func (j *sttJoiner) joinNodeWithLeaf(other *Side, otherID rtree.NodeID, leaf rtree.NodeInfo) {
	oinfo, err := other.V.Node(otherID)
	if err != nil {
		return
	}
	j.chargeSide(other, oinfo)
	if oinfo.Leaf {
		for i := range oinfo.Children {
			for k := range leaf.Children {
				if oinfo.Children[i].Rect.Intersects(leaf.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: oinfo.Children[i].Object, Right: leaf.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for i := range oinfo.Children {
		child := oinfo.Children[i]
		if !child.Rect.Intersects(leaf.MBB) {
			continue
		}
		if clips := other.clips(child.Child); len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinNodeWithLeaf(other, child.Child, leaf)
	}
}

func (j *sttJoiner) chargeLeft(info rtree.NodeInfo) {
	j.left.Tree.ChargeReadSized(info.ID, info.Leaf, info.Bytes, j.leftCtr)
}

func (j *sttJoiner) chargeRight(info rtree.NodeInfo) {
	j.right.Tree.ChargeReadSized(info.ID, info.Leaf, info.Bytes, j.rightCtr)
}

// chargeSide charges a node access of one side to that side's counter; the
// side pointer identifies left vs right even in a self-join, where both
// sides hold the same tree.
func (j *sttJoiner) chargeSide(s *Side, info rtree.NodeInfo) {
	if s == &j.left {
		j.chargeLeft(info)
		return
	}
	j.chargeRight(info)
}
