// Package join implements the two spatial-join strategies evaluated in the
// paper: the Index Nested Loop Join (INLJ), used when only one input is
// indexed, and the Synchronised Tree Traversal (STT) of Brinkhoff et al.,
// used when both inputs are indexed. Both strategies run with or without
// clipped bounding boxes; with clipping, a child node is skipped when the
// probe rectangle (INLJ) or the partner subtree's MBB (STT) lies entirely in
// the child's clipped dead space.
package join

import (
	"errors"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Pair is one result of a spatial join: two object ids whose rectangles
// intersect.
type Pair struct {
	Left  rtree.ObjectID
	Right rtree.ObjectID
}

// Result summarises a join run.
type Result struct {
	// Pairs is the number of intersecting pairs found.
	Pairs int64
	// IO is the node-access delta incurred by the join (leaf and directory
	// reads across all participating trees).
	IO storage.Snapshot
}

// INLJ performs an index nested loop join: every probe rectangle is run as a
// range query against the indexed (and optionally clipped) input. When idx
// is nil the plain tree is probed; otherwise the clipped search path is
// used. The visit callback is optional.
func INLJ(tree *rtree.Tree, idx *clipindex.Index, probes []rtree.Item, visit func(Pair)) (Result, error) {
	if tree == nil {
		return Result{}, errors.New("join: INLJ requires an indexed input")
	}
	if idx != nil && idx.Tree() != tree {
		return Result{}, errors.New("join: clip index does not belong to the probed tree")
	}
	counter := tree.Counter()
	before := counter.Snapshot()
	var pairs int64
	for _, probe := range probes {
		emit := func(id rtree.ObjectID, _ geom.Rect) bool {
			pairs++
			if visit != nil {
				visit(Pair{Left: id, Right: probe.Object})
			}
			return true
		}
		if idx != nil {
			idx.Search(probe.Rect, emit)
		} else {
			tree.Search(probe.Rect, emit)
		}
	}
	return Result{Pairs: pairs, IO: storage.Diff(before, counter.Snapshot())}, nil
}

// STT performs a synchronised tree traversal join of two indexed inputs.
// When clip indexes are provided (either may be nil), the traversal applies
// the dominance tests of Algorithm 2 in both directions before descending
// into a pair of subtrees: a subtree pair is pruned when either side's
// overlap with the other's MBB lies entirely in clipped dead space.
//
// Both trees must use distinct I/O counters or the same counter; the
// reported IO is the sum of the deltas of both counters (counted once if
// shared).
func STT(left, right *rtree.Tree, leftIdx, rightIdx *clipindex.Index, visit func(Pair)) (Result, error) {
	if left == nil || right == nil {
		return Result{}, errors.New("join: STT requires two indexed inputs")
	}
	if left.Dims() != right.Dims() {
		return Result{}, errors.New("join: dimensionality mismatch")
	}
	if leftIdx != nil && leftIdx.Tree() != left {
		return Result{}, errors.New("join: left clip index does not belong to the left tree")
	}
	if rightIdx != nil && rightIdx.Tree() != right {
		return Result{}, errors.New("join: right clip index does not belong to the right tree")
	}
	lb := left.Counter().Snapshot()
	var rb storage.Snapshot
	shared := left.Counter() == right.Counter()
	if !shared {
		rb = right.Counter().Snapshot()
	}

	j := &sttJoiner{
		left: left, right: right,
		leftClips:  tableOrNil(leftIdx),
		rightClips: tableOrNil(rightIdx),
		visit:      visit,
	}
	if left.RootID() != rtree.InvalidNode && right.RootID() != rtree.InvalidNode {
		j.joinNodes(left.RootID(), right.RootID())
	}

	io := storage.Diff(lb, left.Counter().Snapshot())
	if !shared {
		rio := storage.Diff(rb, right.Counter().Snapshot())
		io.LeafReads += rio.LeafReads
		io.DirReads += rio.DirReads
		io.Writes += rio.Writes
		io.Reclips += rio.Reclips
	}
	return Result{Pairs: j.pairs, IO: io}, nil
}

func tableOrNil(idx *clipindex.Index) clipindex.Table {
	if idx == nil {
		return nil
	}
	return idx.Table()
}

type sttJoiner struct {
	left, right           *rtree.Tree
	leftClips, rightClips clipindex.Table
	visit                 func(Pair)
	pairs                 int64
}

// admissible applies the clipped intersection test in both directions for a
// candidate pair of node MBBs: the pair survives only if neither side's
// clipped bounding box certifies the other's MBB as dead space.
func (j *sttJoiner) admissible(leftID rtree.NodeID, leftMBB geom.Rect, rightID rtree.NodeID, rightMBB geom.Rect) bool {
	if !leftMBB.Intersects(rightMBB) {
		return false
	}
	if clips := j.leftClips[leftID]; len(clips) > 0 {
		if !core.Intersects(leftMBB, clips, rightMBB, core.SelectorQuery) {
			return false
		}
	}
	if clips := j.rightClips[rightID]; len(clips) > 0 {
		if !core.Intersects(rightMBB, clips, leftMBB, core.SelectorQuery) {
			return false
		}
	}
	return true
}

func (j *sttJoiner) joinNodes(leftID, rightID rtree.NodeID) {
	linfo, err := j.left.Node(leftID)
	if err != nil {
		return
	}
	rinfo, err := j.right.Node(rightID)
	if err != nil {
		return
	}
	j.chargeRead(j.left, linfo)
	j.chargeRead(j.right, rinfo)

	switch {
	case linfo.Leaf && rinfo.Leaf:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				if linfo.Children[i].Rect.Intersects(rinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: linfo.Children[i].Object, Right: rinfo.Children[k].Object})
					}
				}
			}
		}
	case linfo.Leaf:
		// Descend only the right tree.
		for k := range rinfo.Children {
			child := rinfo.Children[k]
			if j.admissible(linfo.ID, linfo.MBB, child.Child, child.Rect) {
				j.joinLeafWithNode(linfo, j.right, child.Child, j.rightClips)
			}
		}
	case rinfo.Leaf:
		for i := range linfo.Children {
			child := linfo.Children[i]
			if j.admissible(child.Child, child.Rect, rinfo.ID, rinfo.MBB) {
				j.joinNodeWithLeaf(j.left, child.Child, j.leftClips, rinfo)
			}
		}
	default:
		for i := range linfo.Children {
			for k := range rinfo.Children {
				lc, rc := linfo.Children[i], rinfo.Children[k]
				if j.admissible(lc.Child, lc.Rect, rc.Child, rc.Rect) {
					j.joinNodes(lc.Child, rc.Child)
				}
			}
		}
	}
}

// joinLeafWithNode joins an already-loaded leaf with a (possibly deeper)
// subtree of the other tree.
func (j *sttJoiner) joinLeafWithNode(leaf rtree.NodeInfo, other *rtree.Tree, otherID rtree.NodeID, otherClips clipindex.Table) {
	oinfo, err := other.Node(otherID)
	if err != nil {
		return
	}
	j.chargeRead(other, oinfo)
	if oinfo.Leaf {
		for i := range leaf.Children {
			for k := range oinfo.Children {
				if leaf.Children[i].Rect.Intersects(oinfo.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: leaf.Children[i].Object, Right: oinfo.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for k := range oinfo.Children {
		child := oinfo.Children[k]
		if !leaf.MBB.Intersects(child.Rect) {
			continue
		}
		if clips := otherClips[child.Child]; len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinLeafWithNode(leaf, other, child.Child, otherClips)
	}
}

// joinNodeWithLeaf mirrors joinLeafWithNode with the leaf on the right.
func (j *sttJoiner) joinNodeWithLeaf(other *rtree.Tree, otherID rtree.NodeID, otherClips clipindex.Table, leaf rtree.NodeInfo) {
	oinfo, err := other.Node(otherID)
	if err != nil {
		return
	}
	j.chargeRead(other, oinfo)
	if oinfo.Leaf {
		for i := range oinfo.Children {
			for k := range leaf.Children {
				if oinfo.Children[i].Rect.Intersects(leaf.Children[k].Rect) {
					j.pairs++
					if j.visit != nil {
						j.visit(Pair{Left: oinfo.Children[i].Object, Right: leaf.Children[k].Object})
					}
				}
			}
		}
		return
	}
	for i := range oinfo.Children {
		child := oinfo.Children[i]
		if !child.Rect.Intersects(leaf.MBB) {
			continue
		}
		if clips := otherClips[child.Child]; len(clips) > 0 {
			if !core.Intersects(child.Rect, clips, leaf.MBB, core.SelectorQuery) {
				continue
			}
		}
		j.joinNodeWithLeaf(other, child.Child, otherClips, leaf)
	}
}

func (j *sttJoiner) chargeRead(t *rtree.Tree, info rtree.NodeInfo) {
	if info.Leaf {
		t.Counter().LeafRead(1)
	} else {
		t.Counter().DirRead(1)
	}
}
