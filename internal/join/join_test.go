package join

import (
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/datasets"
	"cbb/internal/rtree"
)

func buildIndexed(t testing.TB, name string, n int, seed int64, variant rtree.Variant) (*rtree.Tree, []rtree.Item) {
	t.Helper()
	objs, err := datasets.Generate(name, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := datasets.Lookup(name)
	uni, _ := datasets.Universe(name)
	cfg := rtree.Config{Dims: spec.Dims, MaxEntries: 16, MinEntries: 6, Variant: variant, Universe: uni}
	tree := rtree.MustNew(cfg)
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{Object: rtree.ObjectID(i), Rect: o}
	}
	if err := tree.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	return tree, items
}

func bruteForcePairs(a, b []rtree.Item) int64 {
	var n int64
	for _, x := range a {
		for _, y := range b {
			if x.Rect.Intersects(y.Rect) {
				n++
			}
		}
	}
	return n
}

func TestINLJMatchesBruteForce(t *testing.T) {
	left, leftItems := buildIndexed(t, "axo03", 1500, 1, rtree.RStar)
	_, rightItems := buildIndexed(t, "den03", 800, 2, rtree.RStar)
	want := bruteForcePairs(leftItems, rightItems)

	plain, err := INLJ(left, nil, rightItems, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Pairs != want {
		t.Fatalf("unclipped INLJ found %d pairs, want %d", plain.Pairs, want)
	}

	idx, err := clipindex.New(left, core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	clipped, err := INLJ(left, idx, rightItems, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clipped.Pairs != want {
		t.Fatalf("clipped INLJ found %d pairs, want %d", clipped.Pairs, want)
	}
	if clipped.IO.LeafReads > plain.IO.LeafReads {
		t.Errorf("clipping increased INLJ leaf I/O: %d > %d", clipped.IO.LeafReads, plain.IO.LeafReads)
	}
	t.Logf("INLJ leaf reads: unclipped %d, clipped %d", plain.IO.LeafReads, clipped.IO.LeafReads)
}

func TestINLJErrors(t *testing.T) {
	if _, err := INLJ(nil, nil, nil, nil); err == nil {
		t.Error("nil tree must be rejected")
	}
	left, _ := buildIndexed(t, "axo03", 200, 3, rtree.Quadratic)
	other, _ := buildIndexed(t, "den03", 200, 4, rtree.Quadratic)
	otherIdx, _ := clipindex.New(other, core.DefaultParams(3))
	if _, err := INLJ(left, otherIdx, nil, nil); err == nil {
		t.Error("mismatched clip index must be rejected")
	}
}

func TestINLJVisitCallback(t *testing.T) {
	left, leftItems := buildIndexed(t, "par02", 500, 5, rtree.RRStar)
	probes := leftItems[:50]
	var seen int
	res, err := INLJ(left, nil, probes, func(Pair) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if int64(seen) != res.Pairs {
		t.Errorf("visit callback saw %d pairs, result says %d", seen, res.Pairs)
	}
	if res.Pairs < int64(len(probes)) {
		t.Error("every probe should at least join with itself")
	}
}

func TestSTTMatchesBruteForce(t *testing.T) {
	for _, variant := range []rtree.Variant{rtree.Quadratic, rtree.RStar} {
		left, leftItems := buildIndexed(t, "axo03", 1200, 6, variant)
		right, rightItems := buildIndexed(t, "den03", 700, 7, variant)
		want := bruteForcePairs(leftItems, rightItems)

		plain, err := STT(left, right, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Pairs != want {
			t.Fatalf("%v: unclipped STT found %d pairs, want %d", variant, plain.Pairs, want)
		}

		leftIdx, _ := clipindex.New(left, core.DefaultParams(3))
		rightIdx, _ := clipindex.New(right, core.DefaultParams(3))
		clipped, err := STT(left, right, leftIdx, rightIdx, nil)
		if err != nil {
			t.Fatal(err)
		}
		if clipped.Pairs != want {
			t.Fatalf("%v: clipped STT found %d pairs, want %d", variant, clipped.Pairs, want)
		}
		if clipped.IO.LeafReads > plain.IO.LeafReads {
			t.Errorf("%v: clipping increased STT leaf I/O: %d > %d", variant, clipped.IO.LeafReads, plain.IO.LeafReads)
		}
		t.Logf("%v STT leaf reads: unclipped %d, clipped %d", variant, plain.IO.LeafReads, clipped.IO.LeafReads)
	}
}

func TestSTTIsCheaperThanINLJ(t *testing.T) {
	// The paper observes that STT incurs far fewer accesses than INLJ.
	left, _ := buildIndexed(t, "axo03", 2000, 8, rtree.RRStar)
	right, rightItems := buildIndexed(t, "den03", 1000, 9, rtree.RRStar)
	inlj, err := INLJ(left, nil, rightItems, nil)
	if err != nil {
		t.Fatal(err)
	}
	stt, err := STT(left, right, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stt.Pairs != inlj.Pairs {
		t.Fatalf("join strategies disagree: %d vs %d", stt.Pairs, inlj.Pairs)
	}
	if stt.IO.Total() >= inlj.IO.Total() {
		t.Errorf("STT (%d accesses) should be cheaper than INLJ (%d)", stt.IO.Total(), inlj.IO.Total())
	}
}

func TestSTTErrors(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 200, 10, rtree.Quadratic)
	right2d, _ := buildIndexed(t, "par02", 200, 11, rtree.Quadratic)
	if _, err := STT(nil, left, nil, nil, nil); err == nil {
		t.Error("nil tree must be rejected")
	}
	if _, err := STT(left, right2d, nil, nil, nil); err == nil {
		t.Error("dimensionality mismatch must be rejected")
	}
	otherIdx, _ := clipindex.New(right2d, core.DefaultParams(2))
	right3d, _ := buildIndexed(t, "den03", 200, 12, rtree.Quadratic)
	if _, err := STT(left, right3d, otherIdx, nil, nil); err == nil {
		t.Error("mismatched left clip index must be rejected")
	}
	if _, err := STT(left, right3d, nil, otherIdx, nil); err == nil {
		t.Error("mismatched right clip index must be rejected")
	}
}

func TestSTTEmptyTrees(t *testing.T) {
	empty := rtree.MustNew(rtree.DefaultConfig(3, rtree.Quadratic))
	left, _ := buildIndexed(t, "axo03", 100, 13, rtree.Quadratic)
	res, err := STT(left, empty, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 0 {
		t.Error("join with an empty tree should produce no pairs")
	}
}

func TestSTTSharedCounter(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 600, 14, rtree.RStar)
	right, _ := buildIndexed(t, "den03", 400, 15, rtree.RStar)
	// Share one counter across both trees; IO must not be double-counted.
	right.SetCounter(left.Counter())
	res, err := STT(left, right, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.LeafReads <= 0 {
		t.Error("shared-counter join should still report I/O")
	}
}

func BenchmarkSTTJoin(b *testing.B) {
	left, _ := buildIndexed(b, "axo03", 3000, 1, rtree.RRStar)
	right, _ := buildIndexed(b, "den03", 1500, 2, rtree.RRStar)
	leftIdx, _ := clipindex.New(left, core.DefaultParams(3))
	rightIdx, _ := clipindex.New(right, core.DefaultParams(3))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = STT(left, right, leftIdx, rightIdx, nil)
	}
}
