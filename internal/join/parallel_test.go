package join

import (
	"sort"
	"sync"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/rtree"
)

// sortedPairs collects join output through a callback safe for any worker
// count and returns it in canonical order.
func sortedPairs(run func(visit func(Pair)) (Result, error), t *testing.T) ([]Pair, Result) {
	t.Helper()
	var mu sync.Mutex
	var pairs []Pair
	res, err := run(func(p Pair) {
		mu.Lock()
		pairs = append(pairs, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(pairs, func(i, k int) bool {
		if pairs[i].Left != pairs[k].Left {
			return pairs[i].Left < pairs[k].Left
		}
		return pairs[i].Right < pairs[k].Right
	})
	return pairs, res
}

func TestPINLJMatchesSequential(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 1500, 21, rtree.RStar)
	_, probes := buildIndexed(t, "den03", 800, 22, rtree.RStar)
	idx, err := clipindex.New(left, core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, clip := range []*clipindex.Index{nil, idx} {
		seqPairs, seq := sortedPairs(func(v func(Pair)) (Result, error) {
			return INLJ(left, clip, probes, v)
		}, t)
		for _, workers := range []int{2, 4, 8} {
			parPairs, par := sortedPairs(func(v func(Pair)) (Result, error) {
				return PINLJ(left, clip, probes, workers, v)
			}, t)
			if par.Pairs != seq.Pairs {
				t.Fatalf("workers=%d clip=%v: %d pairs, sequential %d", workers, clip != nil, par.Pairs, seq.Pairs)
			}
			if par.IO != seq.IO {
				t.Fatalf("workers=%d clip=%v: IO %+v, sequential %+v", workers, clip != nil, par.IO, seq.IO)
			}
			if len(parPairs) != len(seqPairs) {
				t.Fatalf("workers=%d: emitted %d pairs, sequential %d", workers, len(parPairs), len(seqPairs))
			}
			for i := range parPairs {
				if parPairs[i] != seqPairs[i] {
					t.Fatalf("workers=%d: pair %d is %v, sequential %v", workers, i, parPairs[i], seqPairs[i])
				}
			}
		}
	}
}

func TestPSTTMatchesSequential(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 1200, 23, rtree.RRStar)
	right, _ := buildIndexed(t, "den03", 700, 24, rtree.RRStar)
	leftIdx, _ := clipindex.New(left, core.DefaultParams(3))
	rightIdx, _ := clipindex.New(right, core.DefaultParams(3))

	type cfg struct {
		name   string
		li, ri *clipindex.Index
	}
	for _, c := range []cfg{{"plain", nil, nil}, {"clipped", leftIdx, rightIdx}} {
		seqPairs, seq := sortedPairs(func(v func(Pair)) (Result, error) {
			return STT(left, right, c.li, c.ri, v)
		}, t)
		for _, workers := range []int{2, 4, 8} {
			parPairs, par := sortedPairs(func(v func(Pair)) (Result, error) {
				return PSTT(left, right, c.li, c.ri, workers, v)
			}, t)
			if par.Pairs != seq.Pairs {
				t.Fatalf("%s workers=%d: %d pairs, sequential %d", c.name, workers, par.Pairs, seq.Pairs)
			}
			if par.IO != seq.IO {
				t.Fatalf("%s workers=%d: IO %+v, sequential %+v", c.name, workers, par.IO, seq.IO)
			}
			for i := range parPairs {
				if parPairs[i] != seqPairs[i] {
					t.Fatalf("%s workers=%d: pair %d is %v, sequential %v", c.name, workers, i, parPairs[i], seqPairs[i])
				}
			}
		}
	}
}

func TestPSTTSharedCounter(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 600, 25, rtree.RStar)
	right, _ := buildIndexed(t, "den03", 400, 26, rtree.RStar)
	right.SetCounter(left.Counter())
	seq, err := STT(left, right, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := PSTT(left, right, nil, nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if par.Pairs != seq.Pairs || par.IO != seq.IO {
		t.Fatalf("shared counter: parallel %+v, sequential %+v", par, seq)
	}
}

func TestParallelJoinAccumulatesTreeCounters(t *testing.T) {
	left, _ := buildIndexed(t, "axo03", 800, 27, rtree.RStar)
	_, probes := buildIndexed(t, "den03", 500, 28, rtree.RStar)
	left.Counter().Reset()
	res, err := PINLJ(left, nil, probes, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := left.Counter().Snapshot(); got != res.IO {
		t.Fatalf("tree counter %+v after join, result IO %+v", got, res.IO)
	}
}

func TestPSTTSmallTreesFallBack(t *testing.T) {
	// Trees whose root is a leaf take the sequential path; results must
	// still be exact.
	left, leftItems := buildIndexed(t, "axo03", 10, 29, rtree.Quadratic)
	right, rightItems := buildIndexed(t, "den03", 8, 30, rtree.Quadratic)
	want := bruteForcePairs(leftItems, rightItems)
	res, err := PSTT(left, right, nil, nil, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != want {
		t.Fatalf("small-tree PSTT found %d pairs, want %d", res.Pairs, want)
	}
}
