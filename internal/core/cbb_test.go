package core

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/geom"
)

// figure2Objects reconstructs the five-object running example of the paper's
// Figure 2 inside the MBB [0,0]-[10,10].
func figure2Objects() []geom.Rect {
	return []geom.Rect{
		geom.R(0, 4, 3, 10), // o1: tall box at the left
		geom.R(1, 0, 2, 4),  // o2: thin box at the bottom-left
		geom.R(4, 0, 5, 3),  // o3: small box at the bottom
		geom.R(6, 0, 9, 4),  // o4: wide box at the bottom-right
		geom.R(8, 2, 10, 3), // o5: small box at the right edge
	}
}

func TestDefaultParams(t *testing.T) {
	p2 := DefaultParams(2)
	if p2.K != 8 || p2.Tau != 0.025 || p2.Method != MethodStairline {
		t.Fatalf("unexpected 2d defaults: %+v", p2)
	}
	if DefaultParams(3).K != 16 {
		t.Fatalf("3d default K should be 16")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(2).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if err := (Params{K: -1, Tau: 0.1, Method: MethodSkyline}).Validate(); err == nil {
		t.Error("negative K must be rejected")
	}
	if err := (Params{K: 1, Tau: 1.5, Method: MethodSkyline}).Validate(); err == nil {
		t.Error("tau >= 1 must be rejected")
	}
	if err := (Params{K: 1, Tau: 0.1, Method: Method(7)}).Validate(); err == nil {
		t.Error("unknown method must be rejected")
	}
}

func TestMethodString(t *testing.T) {
	if MethodSkyline.String() != "CSKY" || MethodStairline.String() != "CSTA" {
		t.Error("method names should match the paper")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestClipEmptyInputs(t *testing.T) {
	mbb := geom.R(0, 0, 10, 10)
	if Clip(mbb, nil, DefaultParams(2)) != nil {
		t.Error("no children → no clip points")
	}
	if Clip(mbb, []geom.Rect{geom.R(0, 0, 1, 1)}, Params{K: 0, Tau: 0, Method: MethodSkyline}) != nil {
		t.Error("K=0 → no clip points")
	}
	// Zero-volume MBB (a point dataset leaf) cannot be clipped.
	pointMBB := geom.PointRect(geom.Pt(1, 1))
	if Clip(pointMBB, []geom.Rect{geom.PointRect(geom.Pt(1, 1))}, DefaultParams(2)) != nil {
		t.Error("zero-volume MBB → no clip points")
	}
}

func TestClipFigure2Skyline(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	if !mbb.Equal(geom.R(0, 0, 10, 10)) {
		t.Fatalf("example MBB = %v", mbb)
	}
	clips := Clip(mbb, objs, Params{K: 8, Tau: 0.0, Method: MethodSkyline})
	if len(clips) == 0 {
		t.Fatal("expected skyline clip points for the running example")
	}
	// Every clip point coordinate must coincide with a corner of some object
	// (object-situated property of CSKY).
	for _, c := range clips {
		found := false
		for _, o := range objs {
			geom.Corners(2, func(b geom.Corner) {
				if o.Corner(b).Equal(c.Coord) {
					found = true
				}
			})
		}
		if !found {
			t.Errorf("CSKY clip point %v does not lie on any object corner", c)
		}
	}
	// Clip points are ordered by descending score.
	for i := 1; i < len(clips); i++ {
		if clips[i].Score > clips[i-1].Score+1e-12 {
			t.Errorf("clips not sorted by score: %g before %g", clips[i-1].Score, clips[i].Score)
		}
	}
}

func TestClipFigure2StairlineBeatsSkyline(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	pSky := Params{K: 8, Tau: 0.0, Method: MethodSkyline}
	pSta := Params{K: 8, Tau: 0.0, Method: MethodStairline}
	sky := Clip(mbb, objs, pSky)
	sta := Clip(mbb, objs, pSta)
	vSky := ClippedVolume(mbb, sky)
	vSta := ClippedVolume(mbb, sta)
	if vSta < vSky {
		t.Fatalf("stairline clipping (%.2f) should clip at least as much as skyline (%.2f)", vSta, vSky)
	}
	if vSta <= 0 || vSky <= 0 {
		t.Fatal("both methods should clip some dead space on the running example")
	}
	// The top-right corner region above o1 and o4 (the paper's point c) is a
	// big empty block; stairline clipping should find most of it.
	deadTopRight := geom.R(3, 4, 10, 10).Volume() - geom.R(3, 4, 3, 9).Volume() // o1 only touches the boundary
	_ = deadTopRight
	if vSta < 0.3*mbb.Volume() {
		t.Errorf("stairline should clip a substantial share of the example MBB, got %.1f%%",
			100*vSta/mbb.Volume())
	}
}

func TestClipRespectsKAndTau(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	for _, k := range []int{1, 2, 4, 8} {
		clips := Clip(mbb, objs, Params{K: k, Tau: 0.0, Method: MethodStairline})
		if len(clips) > k {
			t.Errorf("K=%d but %d clip points returned", k, len(clips))
		}
	}
	// With a very high tau nothing qualifies.
	if got := Clip(mbb, objs, Params{K: 8, Tau: 0.99, Method: MethodStairline}); len(got) != 0 {
		t.Errorf("tau=0.99 should reject all clip points, got %d", len(got))
	}
	// All stored scores exceed tau * volume.
	tau := 0.05
	for _, c := range Clip(mbb, objs, Params{K: 8, Tau: tau, Method: MethodStairline}) {
		if c.Score <= tau*mbb.Volume() {
			t.Errorf("clip point with score %g below tau threshold %g stored", c.Score, tau*mbb.Volume())
		}
	}
}

func TestClipPointRegionAndString(t *testing.T) {
	mbb := geom.R(0, 0, 10, 10)
	c := ClipPoint{Coord: geom.Pt(7, 8), Mask: 0b11, Score: 6}
	if !c.Region(mbb).Equal(geom.R(7, 8, 10, 10)) {
		t.Errorf("Region = %v", c.Region(mbb))
	}
	if c.String() != "<(7, 8), 11>" {
		t.Errorf("String = %q", c.String())
	}
	cl := c.Clone()
	cl.Coord[0] = 99
	if c.Coord[0] != 7 {
		t.Error("Clone must be independent")
	}
}

func TestCBBClone(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	cbb := CBB{MBB: mbb, Clips: Clip(mbb, objs, DefaultParams(2))}
	cl := cbb.Clone()
	if len(cl.Clips) != len(cbb.Clips) {
		t.Fatal("clone lost clips")
	}
	if len(cl.Clips) > 0 {
		cl.Clips[0].Coord[0] = -999
		if cbb.Clips[0].Coord[0] == -999 {
			t.Error("clone shares clip coordinates with original")
		}
	}
}

// The key soundness invariant (Definition 2): a clip point never clips away
// space occupied by a child. We verify that no child rectangle overlaps the
// open interior of any clipped region, for both methods, on random inputs.
func TestClipNeverClipsOccupiedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		dims := 2 + rng.Intn(2)
		n := 2 + rng.Intn(30)
		children := make([]geom.Rect, n)
		for i := range children {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				a := float64(rng.Intn(100))
				w := float64(rng.Intn(20))
				lo[d], hi[d] = a, a+w
			}
			children[i] = geom.Rect{Lo: lo, Hi: hi}
		}
		mbb := geom.MBROf(children)
		for _, method := range []Method{MethodSkyline, MethodStairline} {
			clips := Clip(mbb, children, Params{K: 1 << uint(dims+1), Tau: 0, Method: method})
			for _, c := range clips {
				region := c.Region(mbb)
				for _, ch := range children {
					if region.OverlapVolume(ch) > 1e-9 {
						t.Fatalf("%v clip point %v clips into child %v (region %v, overlap %g)",
							method, c, ch, region, region.OverlapVolume(ch))
					}
				}
			}
		}
	}
}

func TestIntersectsDisjointMBB(t *testing.T) {
	mbb := geom.R(0, 0, 10, 10)
	q := geom.R(20, 20, 30, 30)
	if Intersects(mbb, nil, q, SelectorQuery) {
		t.Error("disjoint query must not intersect")
	}
}

func TestIntersectsNoClips(t *testing.T) {
	mbb := geom.R(0, 0, 10, 10)
	q := geom.R(5, 5, 6, 6)
	if !Intersects(mbb, nil, q, SelectorQuery) {
		t.Error("query inside MBB with no clips must intersect")
	}
}

func TestIntersectsFigure6(t *testing.T) {
	// Figure 6a: the query overlaps only dead space of the bottom node and
	// is pruned by the first clip point; Figure 6b: the query overlaps live
	// space of the top node and is not pruned.
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	clips := Clip(mbb, objs, Params{K: 8, Tau: 0, Method: MethodStairline})
	// A query sitting in the big empty top-right block, away from o1 and o4.
	deadQ := geom.R(5, 6, 8, 8)
	if Intersects(mbb, clips, deadQ, SelectorQuery) {
		t.Error("query entirely in clipped dead space should be pruned")
	}
	// A query overlapping o4 must never be pruned.
	liveQ := geom.R(7, 3, 8, 6)
	if !Intersects(mbb, clips, liveQ, SelectorQuery) {
		t.Error("query overlapping an object must not be pruned")
	}
}

func TestIntersectsUnknownSelectorConservative(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	clips := Clip(mbb, objs, DefaultParams(2))
	q := geom.R(5, 6, 8, 8)
	if !Intersects(mbb, clips, q, Selector(42)) {
		t.Error("unknown selector must never prune")
	}
}

// No false pruning: whenever a query rectangle intersects at least one
// child, the clipped intersection test must return true. (The converse —
// pruning everything prunable — is a performance property, not correctness.)
func TestIntersectsNeverFalselyPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		dims := 2 + rng.Intn(2)
		n := 2 + rng.Intn(25)
		children := make([]geom.Rect, n)
		for i := range children {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				a := float64(rng.Intn(50))
				lo[d], hi[d] = a, a+float64(rng.Intn(10))
			}
			children[i] = geom.Rect{Lo: lo, Hi: hi}
		}
		mbb := geom.MBROf(children)
		for _, method := range []Method{MethodSkyline, MethodStairline} {
			clips := Clip(mbb, children, Params{K: 1 << uint(dims+1), Tau: 0, Method: method})
			for q := 0; q < 30; q++ {
				lo := make(geom.Point, dims)
				hi := make(geom.Point, dims)
				for d := 0; d < dims; d++ {
					a := float64(rng.Intn(60)) - 5
					lo[d], hi[d] = a, a+float64(rng.Intn(15))
				}
				query := geom.Rect{Lo: lo, Hi: hi}
				hitsChild := false
				for _, ch := range children {
					if ch.Intersects(query) {
						hitsChild = true
						break
					}
				}
				if hitsChild && !Intersects(mbb, clips, query, SelectorQuery) {
					t.Fatalf("false prune (%v): query %v intersects a child but was pruned", method, query)
				}
			}
		}
	}
}

func TestValidAfterInsert(t *testing.T) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	clips := Clip(mbb, objs, Params{K: 8, Tau: 0, Method: MethodStairline})
	if len(clips) == 0 {
		t.Fatal("need clip points for this test")
	}
	// Inserting an object deep in the clipped top-right block invalidates.
	intruder := geom.R(6, 6, 8, 8)
	if ValidAfterInsert(mbb, clips, intruder) {
		t.Error("object inside clipped dead space must invalidate the CBB")
	}
	// Inserting an object inside already-occupied space keeps clips valid.
	nested := geom.R(6.5, 1, 7.5, 2) // inside o4
	if !ValidAfterInsert(mbb, clips, nested) {
		t.Error("object inside live space must not invalidate the CBB")
	}
}

// Insert validity is consistent with clipping: if ValidAfterInsert says the
// clips survive, none of the clipped regions may overlap the new object.
func TestValidAfterInsertConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 200; iter++ {
		dims := 2 + rng.Intn(2)
		n := 3 + rng.Intn(20)
		children := make([]geom.Rect, n)
		for i := range children {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				a := float64(rng.Intn(40))
				lo[d], hi[d] = a, a+1+float64(rng.Intn(8))
			}
			children[i] = geom.Rect{Lo: lo, Hi: hi}
		}
		mbb := geom.MBROf(children)
		clips := Clip(mbb, children, Params{K: 1 << uint(dims+1), Tau: 0, Method: MethodStairline})
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			a := mbb.Lo[d] + rng.Float64()*(mbb.Hi[d]-mbb.Lo[d])
			lo[d], hi[d] = a, a+rng.Float64()*5
		}
		obj := geom.Rect{Lo: lo, Hi: hi}
		valid := ValidAfterInsert(mbb, clips, obj)
		overlapsDead := false
		for _, c := range clips {
			if c.Region(mbb).OverlapVolume(obj) > 1e-9 {
				overlapsDead = true
				break
			}
		}
		if valid && overlapsDead {
			t.Fatalf("clips reported valid but object %v overlaps a clipped region", obj)
		}
		if !valid && !overlapsDead {
			t.Fatalf("clips reported invalid but object %v overlaps no clipped region", obj)
		}
	}
}

func TestCoversPoint(t *testing.T) {
	mbb := geom.R(0, 0, 10, 10)
	clips := []ClipPoint{{Coord: geom.Pt(7, 7), Mask: 0b11}}
	if !CoversPoint(mbb, clips, geom.Pt(8, 8)) {
		t.Error("(8,8) is strictly inside the clipped region")
	}
	if CoversPoint(mbb, clips, geom.Pt(7, 8)) {
		t.Error("boundary points are not strictly covered")
	}
	if CoversPoint(mbb, clips, geom.Pt(1, 1)) {
		t.Error("(1,1) is live space")
	}
}

func TestUnionVolume(t *testing.T) {
	cases := []struct {
		rects []geom.Rect
		want  float64
	}{
		{nil, 0},
		{[]geom.Rect{geom.R(0, 0, 2, 2)}, 4},
		{[]geom.Rect{geom.R(0, 0, 2, 2), geom.R(1, 1, 3, 3)}, 7},
		{[]geom.Rect{geom.R(0, 0, 2, 2), geom.R(4, 4, 5, 5)}, 5},
		{[]geom.Rect{geom.R(0, 0, 2, 2), geom.R(0, 0, 2, 2)}, 4},
		{[]geom.Rect{geom.R(0, 0, 0, 2, 2, 2), geom.R(1, 1, 1, 3, 3, 3)}, 15},
	}
	for i, c := range cases {
		if got := UnionVolume(c.rects); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: UnionVolume = %g, want %g", i, got, c.want)
		}
	}
}

// The additive score approximation never exceeds reasonable bounds: the
// exact union is at most the sum of individual volumes, and for the stored
// clip set the approximation should be within the union's ballpark.
func TestScoreApproximationSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		n := 3 + rng.Intn(15)
		children := make([]geom.Rect, n)
		for i := range children {
			a, b := float64(rng.Intn(80)), float64(rng.Intn(80))
			children[i] = geom.R(a, b, a+1+float64(rng.Intn(10)), b+1+float64(rng.Intn(10)))
		}
		mbb := geom.MBROf(children)
		clips := Clip(mbb, children, Params{K: 8, Tau: 0, Method: MethodStairline})
		if len(clips) == 0 {
			continue
		}
		exact := ClippedVolume(mbb, clips)
		var sumIndividual float64
		for _, c := range clips {
			sumIndividual += c.Region(mbb).Volume()
		}
		if exact > sumIndividual+1e-9 {
			t.Fatalf("union volume %g exceeds sum of parts %g", exact, sumIndividual)
		}
		if exact > mbb.Volume()+1e-9 {
			t.Fatalf("union volume %g exceeds node volume %g", exact, mbb.Volume())
		}
	}
}

func BenchmarkClipSkyline2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	children := make([]geom.Rect, 100)
	for i := range children {
		a, c := rng.Float64()*100, rng.Float64()*100
		children[i] = geom.R(a, c, a+rng.Float64()*10, c+rng.Float64()*10)
	}
	mbb := geom.MBROf(children)
	p := Params{K: 8, Tau: 0.025, Method: MethodSkyline}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Clip(mbb, children, p)
	}
}

func BenchmarkClipStairline3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	children := make([]geom.Rect, 100)
	for i := range children {
		a, c, d := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		children[i] = geom.R(a, c, d, a+rng.Float64()*10, c+rng.Float64()*10, d+rng.Float64()*10)
	}
	mbb := geom.MBROf(children)
	p := Params{K: 16, Tau: 0.025, Method: MethodStairline}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Clip(mbb, children, p)
	}
}

func BenchmarkIntersectsClipped(b *testing.B) {
	objs := figure2Objects()
	mbb := geom.MBROf(objs)
	clips := Clip(mbb, objs, DefaultParams(2))
	q := geom.R(5, 6, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersects(mbb, clips, q, SelectorQuery)
	}
}
