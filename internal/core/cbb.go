// Package core implements clipped bounding boxes (CBBs), the primary
// contribution of Šidlauskas et al., "Improving Spatial Data Processing by
// Clipping Minimum Bounding Boxes" (ICDE 2018).
//
// A CBB augments a minimum bounding box (MBB) with a small, ordered set of
// clip points. Each clip point is a pair <coordinate, corner-bitmask>
// certifying that the rectangle spanned between the coordinate and the
// indicated MBB corner contains no object — it is dead space that a query
// can skip with a single extra dominance test.
//
// The package provides:
//
//   - ClipPoint and CBB value types (Definitions 2–3);
//   - Clip, the construction procedure (Algorithm 1), in the two variants of
//     the paper: MethodSkyline (CSKY, object-situated clip points of
//     Section III-B) and MethodStairline (CSTA, point-spliced clip points of
//     Section III-C);
//   - Intersects, the clipping-enabled intersection test (Algorithm 2) with
//     the query selector (2^d − 1) and insert selector (0) of Section IV-C/D;
//   - ValidAfterInsert, the eager insert-time validity check of
//     Section IV-D;
//   - dead-space accounting helpers used by the evaluation harness.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"cbb/internal/geom"
	"cbb/internal/skyline"
)

// Method selects how candidate clip points are generated.
type Method int

const (
	// MethodSkyline (CSKY) draws candidates from the corners of the bounded
	// children only: for each MBB corner b, the oriented skyline of the child
	// corners nearest to b (Section III-B).
	MethodSkyline Method = iota
	// MethodStairline (CSTA) additionally splices pairs of skyline points to
	// produce stairline candidates that clip strictly more dead space
	// (Section III-C).
	MethodStairline
)

// String implements fmt.Stringer using the paper's names.
func (m Method) String() string {
	switch m {
	case MethodSkyline:
		return "CSKY"
	case MethodStairline:
		return "CSTA"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ClipPoint is a single clip point <coord, mask> of an MBB (Definition 2).
// Score is the (approximate) volume of dead space the point clips away,
// used to order clip points so that the most effective one is tested first.
type ClipPoint struct {
	Coord geom.Point
	Mask  geom.Corner
	Score float64
}

// Clone returns an independent copy of the clip point.
func (c ClipPoint) Clone() ClipPoint {
	return ClipPoint{Coord: c.Coord.Clone(), Mask: c.Mask, Score: c.Score}
}

// Region returns the rectangle that the clip point removes from mbb: the MBB
// of {Coord, mbb^Mask}.
func (c ClipPoint) Region(mbb geom.Rect) geom.Rect {
	return mbb.CornerRect(c.Coord, c.Mask)
}

// String renders the clip point in the paper's <point, bitmask> notation.
func (c ClipPoint) String() string {
	return fmt.Sprintf("<%s, %s>", c.Coord, c.Mask.StringDims(c.Coord.Dims()))
}

// CBB is a clipped bounding box: an MBB plus its ordered clip points
// (Definition 3). Clips are sorted by descending Score so that the test most
// likely to prune a query executes first (Section IV-A).
type CBB struct {
	MBB   geom.Rect
	Clips []ClipPoint
}

// Clone returns a deep copy of the CBB.
func (c CBB) Clone() CBB {
	out := CBB{MBB: c.MBB.Clone()}
	if len(c.Clips) > 0 {
		out.Clips = make([]ClipPoint, len(c.Clips))
		for i, cp := range c.Clips {
			out.Clips[i] = cp.Clone()
		}
	}
	return out
}

// Params controls clip-point construction (Algorithm 1).
type Params struct {
	// K is the maximum number of clip points kept per node. The paper uses
	// k = 2^(d+1), i.e. up to two per corner.
	K int
	// Tau is the minimum fraction of the node volume a clip point must
	// (approximately) clip away to be stored; the paper uses 2.5%.
	Tau float64
	// Method selects skyline (CSKY) or stairline (CSTA) candidates.
	Method Method
}

// DefaultParams returns the configuration used throughout the paper's
// evaluation for dimensionality dims: k = 2^(dims+1), τ = 2.5%, stairline
// clipping.
func DefaultParams(dims int) Params {
	return Params{K: 1 << uint(dims+1), Tau: 0.025, Method: MethodStairline}
}

// Validate checks the parameters for plausibility.
func (p Params) Validate() error {
	if p.K < 0 {
		return errors.New("core: K must be non-negative")
	}
	if p.Tau < 0 || p.Tau >= 1 {
		return errors.New("core: Tau must be in [0, 1)")
	}
	if p.Method != MethodSkyline && p.Method != MethodStairline {
		return errors.New("core: unknown clipping method")
	}
	return nil
}

// Clip computes the clip points of the MBB mbb given the rectangles of its
// children (child MBBs for directory nodes, object MBBs for leaves). It is
// Algorithm 1 of the paper:
//
//	for each corner b:
//	    P ← oriented skyline of the children's b-corners
//	    if stairline: P ← P ∪ valid splices of pairs of P
//	    score all candidates (additive approximation of Figure 5)
//	    keep candidates with score > τ·Vol(mbb)
//	return the K highest-scoring candidates overall, ordered by score
//
// A nil or empty children slice, a zero-volume MBB, or K == 0 yields no clip
// points. The children need not be clipped themselves; only their MBBs
// participate.
func Clip(mbb geom.Rect, children []geom.Rect, p Params) []ClipPoint {
	if len(children) == 0 || p.K == 0 || !mbb.Valid() {
		return nil
	}
	dims := mbb.Dims()
	nodeVol := mbb.Volume()
	if nodeVol <= 0 {
		// A degenerate (zero-volume) MBB has no dead space to clip.
		return nil
	}
	minScore := p.Tau * nodeVol

	all := make([]ClipPoint, 0, 2*p.K)
	corners := make([]geom.Point, len(children))
	geom.Corners(dims, func(b geom.Corner) {
		// Line 3: nearest corners of every child w.r.t. b, carved out of one
		// flat slab instead of one allocation per corner point. Candidates
		// returned by the skyline stage alias this slab, so each MBB corner
		// gets a fresh slab (kept alive via `all` until the final copy below
		// clones the winners out of it).
		slab := make([]float64, len(children)*dims)
		for i, ch := range children {
			c := slab[i*dims : (i+1)*dims : (i+1)*dims]
			for d := 0; d < dims; d++ {
				if b.Bit(d) {
					c[d] = ch.Hi[d]
				} else {
					c[d] = ch.Lo[d]
				}
			}
			corners[i] = geom.Point(c)
		}
		var candidates []geom.Point
		switch p.Method {
		case MethodStairline:
			candidates = skyline.Stairline(corners, b)
		default:
			candidates = skyline.Oriented(corners, b)
		}
		scored := scoreCorner(mbb, b, candidates)
		for _, cp := range scored {
			if cp.Score > minScore {
				all = append(all, cp)
			}
		}
	})

	// Line 12: keep the K highest-scoring clip points overall.
	slices.SortStableFunc(all, func(a, b ClipPoint) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return 0
		}
	})
	if len(all) > p.K {
		all = all[:p.K]
	}
	// Clone into a right-sized slice: candidate coordinates alias the per-
	// corner scratch slabs, which must not be retained (or shared) by
	// long-lived clip tables.
	out := make([]ClipPoint, len(all))
	for i, cp := range all {
		out[i] = ClipPoint{Coord: cp.Coord.Clone(), Mask: cp.Mask, Score: cp.Score}
	}
	return out
}

// scoreCorner assigns the additive-approximation scores of Figure 5 to the
// candidate clip points of a single corner: the candidate clipping the most
// volume keeps its full volume as score; every other candidate is charged
// its overlap with that best candidate. Candidates are returned unsorted,
// with Coord aliasing the candidate points (the caller clones the winners);
// the candidate regions live only for the duration of the call and share one
// flat backing buffer.
func scoreCorner(mbb geom.Rect, b geom.Corner, candidates []geom.Point) []ClipPoint {
	if len(candidates) == 0 {
		return nil
	}
	dims := mbb.Dims()
	buf := make([]float64, 2*dims*len(candidates))
	regions := make([]geom.Rect, len(candidates))
	out := make([]ClipPoint, 0, len(candidates))
	best := -1
	bestVol := -1.0
	for i, c := range candidates {
		lo := buf[(2*i)*dims : (2*i+1)*dims : (2*i+1)*dims]
		hi := buf[(2*i+1)*dims : (2*i+2)*dims : (2*i+2)*dims]
		for d := 0; d < dims; d++ {
			cc := mbb.Lo[d]
			if b.Bit(d) {
				cc = mbb.Hi[d]
			}
			lo[d] = math.Min(c[d], cc)
			hi[d] = math.Max(c[d], cc)
		}
		regions[i] = geom.Rect{Lo: lo, Hi: hi}
		v := regions[i].Volume()
		out = append(out, ClipPoint{Coord: c, Mask: b, Score: v})
		if v > bestVol {
			bestVol, best = v, i
		}
	}
	// Assumption (2)/(3): the largest clip is assumed chosen; others are
	// charged for the area they share with it so the sum approximates the
	// union without inclusion–exclusion.
	for i := range out {
		if i == best {
			continue
		}
		out[i].Score -= regions[i].OverlapVolume(regions[best])
	}
	return out
}

// ErrSelector is returned by Intersects when the selector is neither
// SelectorQuery nor SelectorInsert.
var ErrSelector = errors.New("core: selector must be SelectorQuery or SelectorInsert")

// Selector chooses which corner of the probe rectangle Algorithm 2 compares
// against each clip point.
type Selector int

const (
	// SelectorQuery (2^d − 1 in the paper) picks the probe corner farthest
	// from the clipped MBB corner: if even that corner lies in the dead
	// region, the whole probe does, and the node can be skipped.
	SelectorQuery Selector = iota
	// SelectorInsert (0 in the paper) picks the probe corner nearest the
	// clipped MBB corner: if it lies strictly inside the dead region, part of
	// the inserted object does too and the clip point has become invalid.
	SelectorInsert
)

// Intersects is Algorithm 2: it reports whether the probe rectangle q may
// intersect live (non-dead) space of the clipped bounding box <mbb, clips>.
//
// With SelectorQuery it returns false when q is disjoint from mbb or when q's
// overlap with mbb lies entirely within the dead space certified by one clip
// point — the caller can then skip reading the node.
//
// With SelectorInsert it returns false when the rectangle of a newly inserted
// object reaches strictly into space certified dead by one clip point — the
// caller must then recompute the node's clip points (Section IV-D). Inserts
// propagate up from a chosen leaf, so q is assumed to intersect mbb.
//
// Dominance here is strict in every dimension, so a probe that merely touches
// the boundary of a dead region is never treated as inside it; clipped search
// therefore returns exactly the same results as unclipped search even for
// workloads with exact coordinate ties.
// The per-clip dominance tests are evaluated without materialising the probe
// corner: Algorithm 2 only ever compares the corner coordinate q.Lo[i] or
// q.Hi[i] selected by the clip mask, so the test reads the query extents
// directly. This keeps the admission path — which runs once per candidate
// child on every query — free of heap allocations.
func Intersects(mbb geom.Rect, clips []ClipPoint, q geom.Rect, sel Selector) bool {
	if !mbb.Intersects(q) {
		return false
	}
	switch sel {
	case SelectorQuery:
		return !QueryDead(clips, q)
	case SelectorInsert:
		return !insertDead(clips, q)
	default:
		// Unknown selector: be conservative and never prune.
		return true
	}
}

// QueryDead reports whether one of the clip points certifies the probe
// rectangle's overlap with the node as entirely dead space — the dominance
// half of Algorithm 2 with the query selector, for callers that have already
// established that q intersects the node's MBB. It performs no allocations.
//
// The probe corner of clip point <c, b> is q's corner farthest from the
// clipped MBB corner, i.e. q.Corner(b.Opposite): dimension i reads q.Lo[i]
// when bit i of b is set and q.Hi[i] otherwise. StrictlyDominates of that
// corner then unfolds to the comparisons below.
func QueryDead(clips []ClipPoint, q geom.Rect) bool {
	for i := range clips {
		c := &clips[i]
		dead := true
		for d := range c.Coord {
			if c.Mask.Bit(d) {
				if q.Lo[d] <= c.Coord[d] {
					dead = false
					break
				}
			} else {
				if q.Hi[d] >= c.Coord[d] {
					dead = false
					break
				}
			}
		}
		if dead {
			return true
		}
	}
	return false
}

// insertDead is the insert-selector counterpart of QueryDead: it reports
// whether the rectangle of a newly placed object reaches strictly into space
// certified dead by one clip point. The probe corner is q.Corner(b): q.Hi[i]
// when bit i is set, q.Lo[i] otherwise.
func insertDead(clips []ClipPoint, q geom.Rect) bool {
	for i := range clips {
		c := &clips[i]
		dead := true
		for d := range c.Coord {
			if c.Mask.Bit(d) {
				if q.Hi[d] <= c.Coord[d] {
					dead = false
					break
				}
			} else {
				if q.Lo[d] >= c.Coord[d] {
					dead = false
					break
				}
			}
		}
		if dead {
			return true
		}
	}
	return false
}

// ValidAfterInsert reports whether the clip points of a node remain valid
// after inserting an object with MBB obj into the node with MBB mbb
// (Section IV-D). It is the insert-selector variant of Algorithm 2: the
// clips remain valid exactly when no part of obj reaches strictly inside a
// clipped region.
func ValidAfterInsert(mbb geom.Rect, clips []ClipPoint, obj geom.Rect) bool {
	return Intersects(mbb, clips, obj, SelectorInsert)
}

// ClippedVolume returns the total volume clipped away by the given clip
// points, counting overlapping regions once (the exact union, evaluated by
// sweeping; used by the evaluation, not by the query path).
func ClippedVolume(mbb geom.Rect, clips []ClipPoint) float64 {
	if len(clips) == 0 {
		return 0
	}
	regions := make([]geom.Rect, len(clips))
	for i, c := range clips {
		regions[i] = c.Region(mbb)
	}
	return UnionVolume(regions)
}

// ApproxClippedVolume returns the additive score approximation of the total
// clipped volume (the quantity Algorithm 1 maximises); comparing it with
// ClippedVolume quantifies the approximation error of Figure 5.
func ApproxClippedVolume(clips []ClipPoint) float64 {
	var s float64
	for _, c := range clips {
		s += c.Score
	}
	return s
}

// CoversPoint reports whether the point lies in space that the clip points
// certify as dead (strictly inside some clipped region).
func CoversPoint(mbb geom.Rect, clips []ClipPoint, p geom.Point) bool {
	for _, c := range clips {
		if geom.StrictlyDominates(p, c.Coord, c.Mask) {
			return true
		}
	}
	return false
}

// UnionVolume computes the exact volume of the union of a set of rectangles
// using coordinate-grid decomposition. The number of rectangles per CBB is
// tiny (≤ 2^(d+1) in the paper's configuration), so the O((2n)^d) grid is
// perfectly affordable and exactness matters for the evaluation figures.
func UnionVolume(rects []geom.Rect) float64 {
	if len(rects) == 0 {
		return 0
	}
	dims := rects[0].Dims()
	// Collect the sorted distinct coordinates per dimension.
	grid := make([][]float64, dims)
	for d := 0; d < dims; d++ {
		coords := make([]float64, 0, 2*len(rects))
		for _, r := range rects {
			coords = append(coords, r.Lo[d], r.Hi[d])
		}
		sort.Float64s(coords)
		uniq := coords[:0]
		for i, v := range coords {
			if i == 0 || v != coords[i-1] {
				uniq = append(uniq, v)
			}
		}
		grid[d] = uniq
	}
	// Walk every grid cell and add its volume if its centre is covered.
	cell := make([]int, dims)
	var total float64
	var walk func(d int, vol float64, centre geom.Point)
	centre := make(geom.Point, dims)
	walk = func(d int, vol float64, centre geom.Point) {
		if d == dims {
			for _, r := range rects {
				if r.ContainsPoint(centre) {
					total += vol
					return
				}
			}
			return
		}
		for i := 0; i+1 < len(grid[d]); i++ {
			cell[d] = i
			w := grid[d][i+1] - grid[d][i]
			if w <= 0 {
				continue
			}
			centre[d] = (grid[d][i] + grid[d][i+1]) / 2
			walk(d+1, vol*w, centre)
		}
	}
	walk(0, 1, centre)
	return total
}
