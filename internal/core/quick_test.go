package core

// Property-based tests (testing/quick) for the CBB core: regardless of how
// children and probes are generated, clip points must only ever certify true
// dead space, and the clipped intersection test must never prune a probe
// that touches a child.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cbb/internal/geom"
)

// clipScenario is a randomly generated node: a set of child rectangles plus
// a probe rectangle, in 2 or 3 dimensions.
type clipScenario struct {
	Children []geom.Rect
	Probe    geom.Rect
}

// Generate implements quick.Generator so testing/quick can produce valid
// scenarios directly (random float64 structs would mostly be invalid
// rectangles).
func (clipScenario) Generate(r *rand.Rand, size int) reflect.Value {
	dims := 2 + r.Intn(2)
	n := 2 + r.Intn(12)
	if size > 0 {
		n = 2 + r.Intn(10+size%20)
	}
	children := make([]geom.Rect, n)
	for i := range children {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			a := float64(r.Intn(60))
			lo[d] = a
			hi[d] = a + float64(r.Intn(12))
		}
		children[i] = geom.Rect{Lo: lo, Hi: hi}
	}
	plo := make(geom.Point, dims)
	phi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		a := float64(r.Intn(70)) - 5
		plo[d] = a
		phi[d] = a + float64(r.Intn(20))
	}
	return reflect.ValueOf(clipScenario{Children: children, Probe: geom.Rect{Lo: plo, Hi: phi}})
}

func TestQuickClipSoundness(t *testing.T) {
	property := func(s clipScenario) bool {
		mbb := geom.MBROf(s.Children)
		dims := mbb.Dims()
		for _, method := range []Method{MethodSkyline, MethodStairline} {
			clips := Clip(mbb, s.Children, Params{K: 1 << uint(dims+1), Tau: 0, Method: method})
			for _, c := range clips {
				region := c.Region(mbb)
				if !mbb.ContainsRect(region) {
					return false
				}
				for _, ch := range s.Children {
					if region.OverlapVolume(ch) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsNeverFalselyPrunes(t *testing.T) {
	property := func(s clipScenario) bool {
		mbb := geom.MBROf(s.Children)
		dims := mbb.Dims()
		clips := Clip(mbb, s.Children, Params{K: 1 << uint(dims+1), Tau: 0, Method: MethodStairline})
		touchesChild := false
		for _, ch := range s.Children {
			if ch.Intersects(s.Probe) {
				touchesChild = true
				break
			}
		}
		if !touchesChild {
			return true // pruning a probe that hits nothing is always fine
		}
		return Intersects(mbb, clips, s.Probe, SelectorQuery)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

func TestQuickInsertValidityConservative(t *testing.T) {
	// If ValidAfterInsert says the clip table survives an insertion, then the
	// inserted rectangle must not overlap any clipped region's interior.
	property := func(s clipScenario) bool {
		mbb := geom.MBROf(s.Children)
		dims := mbb.Dims()
		clips := Clip(mbb, s.Children, Params{K: 1 << uint(dims+1), Tau: 0, Method: MethodStairline})
		grown := mbb.Union(s.Probe)
		if !ValidAfterInsert(grown, clips, s.Probe) {
			return true // recomputation is always a safe answer
		}
		for _, c := range clips {
			if c.Region(mbb).OverlapVolume(s.Probe) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionVolumeBounds(t *testing.T) {
	// The exact union volume is bounded below by the largest member and
	// above by the sum of members.
	property := func(s clipScenario) bool {
		var sum, max float64
		for _, r := range s.Children {
			v := r.Volume()
			sum += v
			if v > max {
				max = v
			}
		}
		u := UnionVolume(s.Children)
		return u >= max-1e-9 && u <= sum+1e-9
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickClippedVolumeMonotoneInK(t *testing.T) {
	// More clip points can only remove more (or equal) volume.
	property := func(s clipScenario) bool {
		mbb := geom.MBROf(s.Children)
		dims := mbb.Dims()
		prev := -1.0
		for _, k := range []int{1, 2, 4, 1 << uint(dims+1)} {
			clips := Clip(mbb, s.Children, Params{K: k, Tau: 0, Method: MethodStairline})
			v := ClippedVolume(mbb, clips)
			if v+1e-9 < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickScoresWithinNodeVolume(t *testing.T) {
	// Every stored clip point's score is positive and never exceeds the node
	// volume (scores are clipped-volume approximations).
	property := func(s clipScenario) bool {
		mbb := geom.MBROf(s.Children)
		if mbb.Volume() <= 0 {
			return true
		}
		dims := mbb.Dims()
		clips := Clip(mbb, s.Children, Params{K: 1 << uint(dims+1), Tau: 0.01, Method: MethodStairline})
		for _, c := range clips {
			if c.Score <= 0 || c.Score > mbb.Volume()*(1+1e-9) || math.IsNaN(c.Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
