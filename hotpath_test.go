package cbb

import (
	"math/rand"
	"runtime/debug"
	"sync"
	"testing"
)

// buildHotPathTestTree is the test-sized sibling of the benchmark helper:
// a bulk-loaded in-memory tree over uniform rectangles plus a query set.
func buildHotPathTestTree(t *testing.T, n int, clipping ClipMethod) (*Tree, []Rect) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	for i := range items {
		lo := Pt(rng.Float64(), rng.Float64())
		items[i] = Item{Object: ObjectID(i), Rect: Rect{Lo: lo, Hi: Pt(lo[0]+0.01, lo[1]+0.01)}}
	}
	tree, err := New(Options{Dims: 2, Variant: RStarTree, Clipping: clipping})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	queries := make([]Rect, 32)
	for i := range queries {
		lo := Pt(rng.Float64()*0.9, rng.Float64()*0.9)
		queries[i] = Rect{Lo: lo, Hi: Pt(lo[0]+0.1, lo[1]+0.1)}
	}
	return tree, queries
}

// TestSearchZeroAllocs pins the zero-allocation guarantee of the in-memory
// read path: once the pooled search scratch is warm, neither a plain nor a
// clip-filtered range query allocates. GC is disabled during the
// measurement so the sync.Pool cannot be drained mid-run.
func TestSearchZeroAllocs(t *testing.T) {
	for _, cm := range []ClipMethod{ClipNone, ClipStairline} {
		t.Run(cm.String(), func(t *testing.T) {
			tree, queries := buildHotPathTestTree(t, 4000, cm)
			hits := 0
			visit := func(ObjectID, Rect) bool { hits++; return true }
			// Warm the scratch pool and any lazily grown stacks.
			for _, q := range queries {
				tree.Search(q, visit)
			}
			if hits == 0 {
				t.Fatal("queries matched nothing; test is vacuous")
			}
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			i := 0
			allocs := testing.AllocsPerRun(100, func() {
				tree.Search(queries[i%len(queries)], visit)
				i++
			})
			if allocs != 0 {
				t.Errorf("steady-state Search (%s) allocates %.1f times per query, want 0", cm, allocs)
			}

			// The same guarantee holds on a pinned snapshot view — the
			// version load happens once at Snapshot time, and the scan loop
			// performs no locking, no atomics, and no allocation.
			v := tree.Snapshot()
			defer v.Close()
			allocs = testing.AllocsPerRun(100, func() {
				v.Search(queries[i%len(queries)], visit)
				i++
			})
			if allocs != 0 {
				t.Errorf("steady-state View.Search (%s) allocates %.1f times per query, want 0", cm, allocs)
			}
		})
	}
}

// TestBatchSearchShardedPoolRace exercises the lock-striped buffer pool from
// several concurrent BatchSearch callers (each itself fanning out over
// worker goroutines) and checks that every caller observes exactly the
// sequential per-query counts. Run with -race, this is the regression test
// for the pool's shard synchronisation.
func TestBatchSearchShardedPoolRace(t *testing.T) {
	tree, queries := buildHotPathTestTree(t, 4000, ClipStairline)
	// Capacity 4096 stripes the pool across the maximum shard count.
	tree.AttachBufferPool(4096)

	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = tree.Count(q)
	}

	const callers = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				res, err := BatchSearch(tree, queries, BatchOptions{Workers: 4})
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					if res.Counts[i] != want[i] {
						t.Errorf("query %d: concurrent count %d, sequential %d", i, res.Counts[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats, ok := tree.BufferStats()
	if !ok || stats.Hits+stats.Misses == 0 {
		t.Fatal("buffer pool saw no traffic")
	}
}
