package cbb

import (
	"errors"
	"sync"

	"cbb/internal/parallel"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// ShardedView is a pinned, cross-shard read view of a ShardedTree taken
// with ShardedTree.Snapshot: one View per shard, all pinned in a single
// acquisition that is atomic with respect to cross-shard batch commits, so
// the per-shard epochs are mutually consistent — the view can never observe
// part of a ShardedBatch. Each shard's epoch stays fixed for the view's
// lifetime regardless of concurrent writers, splits, or merges (a view
// pinned on a since-retired shard keeps serving its frozen content).
//
// Like View, a ShardedView is safe for any number of concurrent goroutines
// and must be released with Close.
type ShardedView struct {
	st    *ShardedTree
	views []*View
	once  sync.Once
}

// Snapshot returns a pinned cross-shard read view of the last committed
// state of every shard. The acquisition excludes cross-shard batch commits
// (and nothing else): plain writers keep committing concurrently, and the
// view keeps serving its epochs.
func (st *ShardedTree) Snapshot() *ShardedView {
	st.commitMu.RLock()
	defer st.commitMu.RUnlock()
	d := st.dir.Load()
	views := make([]*View, len(d.shards))
	for i, sh := range d.shards {
		views[i] = sh.t.Snapshot()
	}
	return &ShardedView{st: st, views: views}
}

// Close releases every shard pin. Idempotent; the view must not be queried
// after Close.
func (sv *ShardedView) Close() {
	sv.once.Do(func() {
		for _, v := range sv.views {
			v.Close()
		}
	})
}

// Shards returns the number of shards pinned by the view.
func (sv *ShardedView) Shards() int { return len(sv.views) }

// Epochs returns the pinned commit epoch of every shard, in directory
// order. The slice is stable for the view's lifetime.
func (sv *ShardedView) Epochs() []uint64 {
	out := make([]uint64, len(sv.views))
	for i, v := range sv.views {
		out[i] = v.Epoch()
	}
	return out
}

// Len returns the total number of indexed objects at the view's epochs.
func (sv *ShardedView) Len() int {
	n := 0
	for _, v := range sv.views {
		n += v.Len()
	}
	return n
}

// Bounds returns the MBB of all indexed objects at the view's epochs.
func (sv *ShardedView) Bounds() Rect {
	var out Rect
	for _, v := range sv.views {
		b := v.Bounds()
		if b.IsZero() {
			continue
		}
		if out.IsZero() {
			out = b
			continue
		}
		out = out.Union(b)
	}
	return out
}

// Search calls visit for every object intersecting q at the view's epochs,
// fanning out only to shards whose pinned root MBB intersects q; traversal
// stops early when visit returns false.
func (sv *ShardedView) Search(q Rect, visit func(ObjectID, Rect) bool) {
	sv.SearchCounted(q, nil, visit)
}

// SearchCounted is Search with node accesses charged to an explicit counter
// (the engine's shared counter when c is nil). It implements the parallel
// executor's Searcher interface, which is how BatchSearch fans a sharded
// view out over workers with exact per-worker I/O accounting.
func (sv *ShardedView) SearchCounted(q Rect, c *storage.Counter, visit func(ObjectID, Rect) bool) {
	if q.Dims() != sv.st.opts.Dims {
		return
	}
	cont := true
	for _, v := range sv.views {
		if !cont {
			return
		}
		if v.v.Len() == 0 || !v.v.RootMBBIntersects(q) {
			continue
		}
		wrapped := func(id ObjectID, r Rect) bool {
			if !visit(id, r) {
				cont = false
				return false
			}
			return true
		}
		if v.snap != nil {
			v.snap.SearchCounted(q, c, wrapped)
		} else {
			v.v.SearchCounted(q, c, wrapped)
		}
	}
}

// SearchAll returns every object intersecting q at the view's epochs.
func (sv *ShardedView) SearchAll(q Rect) []Item {
	var out []Item
	sv.Search(q, func(id ObjectID, r Rect) bool {
		out = append(out, Item{Object: id, Rect: r})
		return true
	})
	return out
}

// Count returns the number of objects intersecting q at the view's epochs.
func (sv *ShardedView) Count(q Rect) int {
	n := 0
	sv.Search(q, func(ObjectID, Rect) bool { n++; return true })
	return n
}

// NearestNeighbors returns the k objects closest to p at the view's epochs,
// ordered by ascending distance (ties broken by object id), with the same
// shard pruning as ShardedTree.NearestNeighbors.
func (sv *ShardedView) NearestNeighbors(k int, p Point) []Neighbor {
	if len(p) != sv.st.opts.Dims {
		return nil
	}
	versions := make([]*rtree.Version, len(sv.views))
	for i, v := range sv.views {
		versions[i] = v.v
	}
	return knnAcrossVersions(versions, k, p)
}

// BatchSearch runs a batch of range queries against the view on a pool of
// worker goroutines, every query answered at the view's epochs, with the
// merged I/O folded into the engine's shared counters exactly once.
func (sv *ShardedView) BatchSearch(queries []Rect, opts BatchOptions) (BatchResult, error) {
	if sv == nil {
		return BatchResult{}, errors.New("cbb: BatchSearch requires a sharded view")
	}
	popts := parallel.Options{
		Workers: opts.Workers,
		Collect: opts.Collect,
		Main:    sv.st.counter,
	}
	res := parallel.RunBatch(sv, queries, popts)
	out := BatchResult{
		Counts:  res.Counts,
		Workers: res.Workers,
		IO:      toIOStats(res.IO),
	}
	if opts.Collect {
		out.Items = res.Items
	}
	return out, nil
}
