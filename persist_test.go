package cbb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"cbb/internal/storage"
)

// corpusItems builds a deterministic item set in d dimensions.
func corpusItems(d, n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		lo := make(Point, d)
		hi := make(Point, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64() * 1000
			hi[j] = lo[j] + rng.Float64()*12
		}
		items[i] = Item{Object: ObjectID(i), Rect: Rect{Lo: lo, Hi: hi}}
	}
	return items
}

// corpusQueries builds a deterministic query batch in d dimensions.
func corpusQueries(d, n int, seed int64) []Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]Rect, n)
	for i := range qs {
		lo := make(Point, d)
		hi := make(Point, d)
		for j := 0; j < d; j++ {
			lo[j] = rng.Float64() * 900
			hi[j] = lo[j] + 20 + rng.Float64()*120
		}
		qs[i] = Rect{Lo: lo, Hi: hi}
	}
	return qs
}

// assertTreesEqual checks that two trees agree bit-for-bit on structure and
// query results: Stats, Len, Height, and SearchAll (including result order)
// over a query batch.
func assertTreesEqual(t *testing.T, want, got *Tree, queries []Rect) {
	t.Helper()
	if want.Len() != got.Len() || want.Height() != got.Height() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", want.Len(), want.Height(), got.Len(), got.Height())
	}
	if ws, gs := want.Stats(), got.Stats(); !reflect.DeepEqual(ws, gs) {
		t.Fatalf("stats differ:\n  want %+v\n  got  %+v", ws, gs)
	}
	for i, q := range queries {
		wr, gr := want.SearchAll(q), got.SearchAll(q)
		if !reflect.DeepEqual(wr, gr) {
			t.Fatalf("query %d: %d results vs %d, or order differs", i, len(wr), len(gr))
		}
	}
}

// TestSnapshotRoundTripMatrix covers the full encode/decode matrix: all four
// variants, dims 1–3, all three clip methods, and three tree shapes (empty,
// single object, bulk loaded), through both Load (in-memory) and Open
// (file-backed).
func TestSnapshotRoundTripMatrix(t *testing.T) {
	variants := []Variant{QRTree, HRTree, RStarTree, RRStarTree}
	methods := []ClipMethod{ClipStairline, ClipSkyline, ClipNone}
	shapes := []string{"empty", "single", "bulk"}
	dir := t.TempDir()

	for _, v := range variants {
		for d := 1; d <= 3; d++ {
			for _, m := range methods {
				for _, shape := range shapes {
					name := fmt.Sprintf("%v/%dd/%v/%s", v, d, m, shape)
					t.Run(name, func(t *testing.T) {
						orig, err := New(Options{Dims: d, Variant: v, Clipping: m})
						if err != nil {
							t.Fatal(err)
						}
						switch shape {
						case "single":
							if err := orig.Insert(corpusItems(d, 1, 3)[0].Rect, 0); err != nil {
								t.Fatal(err)
							}
						case "bulk":
							if err := orig.BulkLoad(corpusItems(d, 400, 3)); err != nil {
								t.Fatal(err)
							}
						}
						queries := corpusQueries(d, 12, 5)

						var buf bytes.Buffer
						if err := orig.SaveTo(&buf); err != nil {
							t.Fatal(err)
						}
						loaded, err := Load(bytes.NewReader(buf.Bytes()))
						if err != nil {
							t.Fatal(err)
						}
						assertTreesEqual(t, orig, loaded, queries)
						if err := loaded.Validate(); err != nil {
							t.Fatalf("loaded tree invalid: %v", err)
						}
						// The snapshot stores the effective universe, while
						// fresh Options may leave it zero; compare the rest.
						lo, oo := loaded.Options(), orig.Options()
						lo.Universe, oo.Universe = Rect{}, Rect{}
						if !reflect.DeepEqual(lo, oo) {
							t.Fatalf("options differ after load:\n  want %+v\n  got  %+v", oo, lo)
						}

						path := filepath.Join(dir, fmt.Sprintf("m-%v-%d-%v-%s.cbb", v, d, m, shape))
						f, err := os.Create(path)
						if err != nil {
							t.Fatal(err)
						}
						if _, err := f.Write(buf.Bytes()); err != nil {
							t.Fatal(err)
						}
						if err := f.Close(); err != nil {
							t.Fatal(err)
						}
						opened, err := Open(path)
						if err != nil {
							t.Fatal(err)
						}
						defer opened.Close()
						assertTreesEqual(t, orig, opened, queries)
						if err := opened.Err(); err != nil {
							t.Fatal(err)
						}
						if err := opened.Validate(); err != nil {
							t.Fatalf("opened tree invalid: %v", err)
						}
					})
				}
			}
		}
	}
}

// TestFileBackedQueryIO is the acceptance criterion of the persistence
// subsystem: a bulk-loaded clipped tree, saved and reopened file-backed,
// returns bit-identical SearchAll results and Stats, serves the queries
// directly off the FilePager, and its leaf/dir read counts match the
// in-memory tree for the same batch.
func TestFileBackedQueryIO(t *testing.T) {
	orig, err := New(Options{Dims: 2, Variant: RRStarTree, Clipping: ClipStairline})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BulkLoad(corpusItems(2, 3000, 11)); err != nil {
		t.Fatal(err)
	}
	queries := corpusQueries(2, 80, 13)

	path := filepath.Join(t.TempDir(), "accept.cbb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.SaveTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	opened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	assertTreesEqual(t, orig, opened, queries)

	orig.ResetIOStats()
	opened.ResetIOStats()
	for _, q := range queries {
		orig.Search(q, func(ObjectID, Rect) bool { return true })
		opened.Search(q, func(ObjectID, Rect) bool { return true })
	}
	mem, file := orig.IOStats(), opened.IOStats()
	if mem.LeafReads != file.LeafReads || mem.DirReads != file.DirReads {
		t.Fatalf("I/O differs: in-memory leaf=%d dir=%d, file-backed leaf=%d dir=%d",
			mem.LeafReads, mem.DirReads, file.LeafReads, file.DirReads)
	}
	if mem.LeafReads == 0 {
		t.Fatal("query batch charged no leaf reads")
	}
	reads, _, ok := opened.FileStats()
	if !ok || reads == 0 {
		t.Fatalf("queries did not run against the FilePager (reads=%d ok=%v)", reads, ok)
	}
	if err := opened.Err(); err != nil {
		t.Fatal(err)
	}

	// The same snapshot loaded fully in memory is also bit-identical.
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	loaded, err := Load(g)
	if err != nil {
		t.Fatal(err)
	}
	assertTreesEqual(t, orig, loaded, queries)
}

// TestOpenReadOnly pins the explicit read-only mode and the ErrReadOnly
// satellite: every public mutating method must fail such that
// errors.Is(err, cbb.ErrReadOnly) holds, without importing internal/rtree.
func TestOpenReadOnly(t *testing.T) {
	orig, err := New(Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BulkLoad(corpusItems(2, 200, 1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ro.cbb")
	f, _ := os.Create(path)
	if err := orig.SaveTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opened, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if !opened.ReadOnly() {
		t.Fatal("OpenReadOnly tree must report ReadOnly")
	}
	if err := opened.Insert(R(0, 0, 1, 1), 999); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert: %v, want ErrReadOnly", err)
	}
	if _, err := opened.Delete(R(0, 0, 1, 1), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete: %v, want ErrReadOnly", err)
	}
	if err := opened.BulkLoad(nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("BulkLoad: %v, want ErrReadOnly", err)
	}
	if err := opened.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Flush: %v, want ErrReadOnly", err)
	}
	// The read-only open still serves queries off the file.
	if got, want := opened.Count(R(0, 0, 1000, 1000)), orig.Count(R(0, 0, 1000, 1000)); got != want {
		t.Fatalf("read-only count %d, want %d", got, want)
	}
	// A writable open of the same file must NOT report read-only.
	rw, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if rw.ReadOnly() {
		t.Fatal("Open of a writable file must not be read-only")
	}
}

// applyOps drives one tree through the shared mixed mutation sequence:
// items[from:to] are inserted one by one, and after every fourth insert the
// object at the delete cursor (always one inserted before `from`, so it is
// guaranteed live) is deleted. Deterministic, so two trees fed the same
// sequence end in the same state; delFrom threads the cursor across phases.
func applyOps(t *testing.T, tree *Tree, items []Item, from, to, delFrom int) (inserts, deletes, delNext int) {
	t.Helper()
	del := delFrom
	for i, it := range items[from:to] {
		if err := tree.Insert(it.Rect, it.Object); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		inserts++
		if i%4 == 3 && del < from {
			victim := items[del]
			ok, err := tree.Delete(victim.Rect, victim.Object)
			if err != nil {
				t.Fatalf("delete %d: %v", del, err)
			}
			if !ok {
				t.Fatalf("delete %d: object %d not found", del, victim.Object)
			}
			del++
			deletes++
		}
	}
	return inserts, deletes, del
}

// assertSameQueryIO runs the query batch against both trees from a cold
// counter and requires bit-identical leaf and directory access counts.
func assertSameQueryIO(t *testing.T, want, got *Tree, queries []Rect) {
	t.Helper()
	want.ResetIOStats()
	got.ResetIOStats()
	for _, q := range queries {
		want.Search(q, func(ObjectID, Rect) bool { return true })
		got.Search(q, func(ObjectID, Rect) bool { return true })
	}
	w, g := want.IOStats(), got.IOStats()
	if w.LeafReads != g.LeafReads || w.DirReads != g.DirReads {
		t.Fatalf("query I/O differs: want leaf=%d dir=%d, got leaf=%d dir=%d",
			w.LeafReads, w.DirReads, g.LeafReads, g.DirReads)
	}
}

// TestWritableFileBackedMatrix is the acceptance matrix of the writable
// persistence path: over dims 1–3 and all three clip methods, a file-backed
// tree mutated through the shared operation sequence, flushed, and reopened
// must be bit-identical — SearchAll (including order), Stats, and leaf/dir
// query I/O — to an in-memory tree fed the same sequence.
func TestWritableFileBackedMatrix(t *testing.T) {
	dir := t.TempDir()
	for d := 1; d <= 3; d++ {
		for _, m := range []ClipMethod{ClipStairline, ClipSkyline, ClipNone} {
			t.Run(fmt.Sprintf("%dd/%v", d, m), func(t *testing.T) {
				opts := Options{Dims: d, Variant: RRStarTree, Clipping: m, MaxEntries: 16, MinEntries: 6}
				items := corpusItems(d, 1600, int64(100*d+int(m)))
				live := 600

				base, err := New(opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, it := range items[:live] {
					if err := base.Insert(it.Rect, it.Object); err != nil {
						t.Fatal(err)
					}
				}
				var buf bytes.Buffer
				if err := base.SaveTo(&buf); err != nil {
					t.Fatal(err)
				}
				path := filepath.Join(dir, fmt.Sprintf("w-%d-%v.cbb", d, m))
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}

				mem, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				fb, err := Open(path)
				if err != nil {
					t.Fatal(err)
				}
				applyOps(t, mem, items, live, len(items), 0)
				applyOps(t, fb, items, live, len(items), 0)

				queries := corpusQueries(d, 25, int64(7*d))
				assertTreesEqual(t, mem, fb, queries)
				if err := fb.Close(); err != nil { // Close flushes
					t.Fatal(err)
				}

				reopened, err := Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer reopened.Close()
				assertTreesEqual(t, mem, reopened, queries)
				assertSameQueryIO(t, mem, reopened, queries)
				if err := reopened.Validate(); err != nil {
					t.Fatalf("reopened tree invalid: %v", err)
				}
				if err := reopened.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestWritableFileBackedHeavy is the headline acceptance run: ≥10k inserts
// plus deletes against a writable file-backed tree, flushed mid-stream and
// at the end, reopened, and compared bit-for-bit against the in-memory twin.
func TestWritableFileBackedHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy update workload")
	}
	opts := Options{Dims: 2, Variant: RRStarTree, Clipping: ClipStairline}
	items := corpusItems(2, 14000, 77)
	live := 2000

	base, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:live] {
		if err := base.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := base.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "heavy.cbb")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mem, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}

	// First half of the sequence, then a mid-stream flush, then the rest:
	// the second half mutates pages the first flush just wrote back.
	half := live + (len(items)-live)/2
	ins1, del1, dn := applyOps(t, mem, items, live, half, 0)
	applyOps(t, fb, items, live, half, 0)
	if err := fb.Flush(); err != nil {
		t.Fatal(err)
	}
	ins2, del2, _ := applyOps(t, mem, items, half, len(items), dn)
	applyOps(t, fb, items, half, len(items), dn)
	if ins1+ins2 < 10000 || del1+del2 < 2000 {
		t.Fatalf("workload too small: %d inserts, %d deletes", ins1+ins2, del1+del2)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	queries := corpusQueries(2, 60, 79)
	assertTreesEqual(t, mem, reopened, queries)
	assertSameQueryIO(t, mem, reopened, queries)
	if reads, writes, ok := reopened.FileStats(); !ok || reads == 0 {
		t.Fatalf("reopened tree did not fault pages from disk (reads=%d writes=%d ok=%v)", reads, writes, ok)
	}
	if err := reopened.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushCrashRecovery exercises the public crash contract: a flush that
// dies after its WAL is durable must surface the post-flush state on the
// next Open; one that dies before (torn WAL) must surface the pre-flush
// state. Never an error, never a mix.
func TestFlushCrashRecovery(t *testing.T) {
	items := corpusItems(2, 900, 91)
	mkState := func(tmpdir string) string {
		t.Helper()
		path := filepath.Join(tmpdir, "crash.cbb")
		created, err := Create(path, Options{Dims: 2, MaxEntries: 16, MinEntries: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items[:500] {
			if err := created.Insert(it.Rect, it.Object); err != nil {
				t.Fatal(err)
			}
		}
		if err := created.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("after-WAL", func(t *testing.T) {
		path := mkState(t.TempDir())
		fb, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, fb, items, 500, len(items), 0)
		boom := errors.New("crash after WAL")
		fb.pager.SetCommitFailpoints(func() error { return boom }, nil)
		if err := fb.Flush(); !errors.Is(err, boom) {
			t.Fatalf("flush error = %v, want injected crash", err)
		}
		// Abandon fb like a dead process and reopen: the committed WAL must
		// replay to the post-flush state.
		reopened, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		mem, err := Load(mustReadAll(t, path))
		if err != nil {
			t.Fatal(err)
		}
		queries := corpusQueries(2, 20, 93)
		assertTreesEqual(t, mem, reopened, queries)
		// And it must equal the in-memory twin of the full op sequence.
		twin, err := New(Options{Dims: 2, MaxEntries: 16, MinEntries: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items[:500] {
			if err := twin.Insert(it.Rect, it.Object); err != nil {
				t.Fatal(err)
			}
		}
		applyOps(t, twin, items, 500, len(items), 0)
		for i, q := range queries {
			if twin.Count(q) != reopened.Count(q) {
				t.Fatalf("query %d: recovered state differs from post-flush state", i)
			}
		}
	})

	t.Run("retry-after-failed-commit", func(t *testing.T) {
		path := mkState(t.TempDir())
		fb, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, fb, items, 500, len(items), 0)
		boom := errors.New("transient I/O error")
		fb.pager.SetCommitFailpoints(func() error { return boom }, nil)
		if err := fb.Flush(); !errors.Is(err, boom) {
			t.Fatalf("flush error = %v, want injected failure", err)
		}
		// The failure was transient: clearing it and flushing again must
		// commit the same transaction, not silently drop it.
		fb.pager.SetCommitFailpoints(nil, nil)
		if err := fb.Flush(); err != nil {
			t.Fatalf("retried flush: %v", err)
		}
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		twin, err := New(Options{Dims: 2, MaxEntries: 16, MinEntries: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items[:500] {
			if err := twin.Insert(it.Rect, it.Object); err != nil {
				t.Fatal(err)
			}
		}
		applyOps(t, twin, items, 500, len(items), 0)
		queries := corpusQueries(2, 20, 95)
		for i, q := range queries {
			if twin.Count(q) != reopened.Count(q) {
				t.Fatalf("query %d: retried flush lost mutations", i)
			}
		}
	})

	t.Run("torn-WAL", func(t *testing.T) {
		path := mkState(t.TempDir())
		s1, err := Load(mustReadAll(t, path))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		applyOps(t, fb, items, 500, len(items), 0)
		boom := errors.New("crash after WAL")
		fb.pager.SetCommitFailpoints(func() error { return boom }, nil)
		if err := fb.Flush(); !errors.Is(err, boom) {
			t.Fatalf("flush error = %v, want injected crash", err)
		}
		// Tear the WAL: drop its last 7 bytes (the commit record is gone).
		walPath := path + storage.WALSuffix
		wal, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, wal[:len(wal)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer reopened.Close()
		queries := corpusQueries(2, 20, 93)
		assertTreesEqual(t, s1, reopened, queries)
	})
}

// TestOpenEmptySnapshotThenGrow covers the degenerate start: a snapshot of
// an empty tree, reopened writable, grown from nothing, flushed, reopened.
func TestOpenEmptySnapshotThenGrow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.cbb")
	created, err := Create(path, Options{Dims: 2, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := created.Close(); err != nil {
		t.Fatal(err)
	}

	fb, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Len() != 0 {
		t.Fatalf("expected empty tree, got %d objects", fb.Len())
	}
	twin, err := New(Options{Dims: 2, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	items := corpusItems(2, 400, 17)
	for _, it := range items {
		if err := fb.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
		if err := twin.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	queries := corpusQueries(2, 15, 19)
	assertTreesEqual(t, twin, reopened, queries)
	if err := reopened.Validate(); err != nil {
		t.Fatal(err)
	}
}

// mustReadAll reads a file into a bytes.Reader for Load.
func mustReadAll(t *testing.T, path string) *bytes.Reader {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

func TestCreateFlushOpenCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cycle.cbb")
	created, err := Create(path, Options{Dims: 2, Variant: RStarTree})
	if err != nil {
		t.Fatal(err)
	}
	if created.ReadOnly() {
		t.Fatal("created tree must stay mutable")
	}
	items := corpusItems(2, 500, 21)
	for _, it := range items {
		if err := created.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	if err := created.Close(); err != nil {
		t.Fatal(err)
	}

	opened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	assertTreesEqual(t, created, opened, corpusQueries(2, 20, 23))
}

// TestFileBackedConcurrentReaders exercises the lazy fault path under the
// race detector: many goroutines query a freshly opened (cold, nothing
// faulted yet) file-backed tree at once.
func TestFileBackedConcurrentReaders(t *testing.T) {
	orig, err := New(Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BulkLoad(corpusItems(2, 2000, 31)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "conc.cbb")
	f, _ := os.Create(path)
	if err := orig.SaveTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	opened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	opened.AttachBufferPool(64)
	queries := corpusQueries(2, 60, 33)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = orig.Count(q)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got := opened.Count(q); got != want[i] {
					t.Errorf("query %d: %d results, want %d", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := opened.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	orig, err := New(Options{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BulkLoad(corpusItems(2, 150, 41)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 1, 16, 32, 48, len(raw) / 3, len(raw) - 2} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// A flipped byte must either fail decoding or be provably harmless (it
	// landed in zero padding outside any checksummed payload), in which case
	// the decoded tree is identical to the original.
	for off := 0; off < len(raw); off += 97 {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x5a
		got, err := Load(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		assertTreesEqual(t, orig, got, corpusQueries(2, 5, 43))
	}
}

// FuzzDecodeSnapshot fuzzes the whole snapshot decode path (page container,
// superblock, node index, clip table, node pages): arbitrary input must
// produce an error or a valid tree, never a panic or runaway allocation.
func FuzzDecodeSnapshot(f *testing.F) {
	for _, opts := range []Options{
		{Dims: 2},
		{Dims: 3, Variant: HRTree, Clipping: ClipSkyline},
		{Dims: 1, Variant: QRTree, Clipping: ClipNone},
	} {
		tree, err := New(opts)
		if err != nil {
			f.Fatal(err)
		}
		if err := tree.BulkLoad(corpusItems(opts.Dims, 120, 7)); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tree.SaveTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:64])
		// The compressed v2 layout exercises a separate decode path
		// (quantised directories, delta-coded leaves, v2 clip table).
		var v2 bytes.Buffer
		if err := tree.SaveToFormat(&v2, SnapshotV2); err != nil {
			f.Fatal(err)
		}
		f.Add(v2.Bytes())
		f.Add(v2.Bytes()[:64])
	}
	f.Add([]byte("CBBPGF1\x00garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decode that succeeds must yield a coherent, queryable tree.
		s := tree.Stats()
		if s.Objects != tree.Len() {
			t.Fatalf("stats/len disagree: %d vs %d", s.Objects, tree.Len())
		}
		tree.Count(corpusQueries(tree.Options().Dims, 1, 1)[0])
	})
}
