package cbb

// Stress tests for snapshot isolation: one writer applies batched
// insert/delete mutations while N reader goroutines query pinned views.
// Every batch preserves an invariant — it inserts and deletes the same
// number of objects — so the total object count is identical at every
// committed epoch. A reader that ever observes a different count has seen a
// partially applied batch (or a torn version), which is exactly what the
// copy-on-write versioning must make impossible. Run with -race (as CI
// does) to additionally verify that the reader path shares no
// unsynchronised mutable state with the writer.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

// stressFixture builds a tree with a known object population and returns it
// together with the rotation queue the writer deletes from.
func stressFixture(t *testing.T, clipping ClipMethod, fileBacked bool, n int) (*Tree, []Item) {
	t.Helper()
	opts := Options{Dims: 2, Variant: RStarTree, Clipping: clipping}
	var tree *Tree
	var err error
	if fileBacked {
		tree, err = Create(filepath.Join(t.TempDir(), "stress.cbb"), opts)
	} else {
		tree, err = New(opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		items[i] = Item{Object: ObjectID(i), Rect: R(x, y, x+rng.Float64()*6, y+rng.Float64()*6)}
		if err := tree.Insert(items[i].Rect, items[i].Object); err != nil {
			t.Fatal(err)
		}
	}
	if fileBacked {
		if err := tree.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return tree, items
}

// TestSnapshotIsolationUnderWriteStress is the snapshot-isolation stress
// test of the ISSUE 5 acceptance criteria: one writer runs count-preserving
// batches (3 inserts + 3 deletes per commit, with a Flush every few batches
// on the file-backed variant) while reader goroutines continuously pin
// views and assert that
//
//   - every pinned view reports exactly the invariant object count (any
//     other count means a torn or partially applied batch was observed),
//   - repeated queries on one view are bit-stable (same counts, same
//     batch-search results, same nearest-neighbour distances) no matter how
//     many commits happen in between,
//   - a view pinned before the writer starts still serves its original
//     epoch after every batch has committed.
func TestSnapshotIsolationUnderWriteStress(t *testing.T) {
	const (
		base    = 1500
		batches = 40
		readers = 4
	)
	for _, fileBacked := range []bool{false, true} {
		for _, clipping := range []ClipMethod{ClipStairline, ClipNone} {
			name := fmt.Sprintf("file=%v/clip=%v", fileBacked, clipping)
			t.Run(name, func(t *testing.T) {
				tree, items := stressFixture(t, clipping, fileBacked, base)
				defer tree.Close()
				universe := R(-10, -10, 1100, 1100)

				before := tree.Snapshot()
				defer before.Close()
				epoch0 := before.Epoch()

				var stop atomic.Bool
				var wg sync.WaitGroup
				errs := make(chan error, readers+1)
				fail := func(format string, args ...interface{}) {
					select {
					case errs <- fmt.Errorf(format, args...):
					default:
					}
				}

				// Writer: count-preserving batches over a rotation queue.
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer stop.Store(true)
					rng := rand.New(rand.NewSource(99))
					queue := append([]Item(nil), items...)
					nextID := ObjectID(base)
					for b := 0; b < batches; b++ {
						batch, err := tree.Begin()
						if err != nil {
							fail("begin: %v", err)
							return
						}
						for k := 0; k < 3; k++ {
							x, y := rng.Float64()*1000, rng.Float64()*1000
							it := Item{Object: nextID, Rect: R(x, y, x+rng.Float64()*6, y+rng.Float64()*6)}
							nextID++
							if err := batch.Insert(it.Rect, it.Object); err != nil {
								fail("batch insert: %v", err)
								return
							}
							queue = append(queue, it)
						}
						for k := 0; k < 3; k++ {
							victim := queue[0]
							queue = queue[1:]
							found, err := batch.Delete(victim.Rect, victim.Object)
							if err != nil || !found {
								fail("batch delete: found=%v err=%v", found, err)
								return
							}
						}
						if err := batch.Commit(); err != nil {
							fail("commit: %v", err)
							return
						}
						if fileBacked && b%8 == 7 {
							if err := tree.Flush(); err != nil {
								fail("flush: %v", err)
								return
							}
						}
					}
				}()

				// Readers: pin a view, interrogate it twice, close it.
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(1000 + r)))
						for i := 0; !stop.Load() || i < 4; i++ {
							v := tree.Snapshot()
							// Invariant: every committed epoch holds exactly
							// `base` objects.
							if got := v.Count(universe); got != base {
								fail("reader %d: count %d at epoch %d, want %d (torn batch?)", r, got, v.Epoch(), base)
								v.Close()
								return
							}
							if got := v.Len(); got != base {
								fail("reader %d: Len %d at epoch %d, want %d", r, got, v.Epoch(), base)
								v.Close()
								return
							}
							// Stability: the same view answers identically no
							// matter how many commits happen around it.
							x, y := rng.Float64()*900, rng.Float64()*900
							q := R(x, y, x+60, y+60)
							c1, c2 := v.Count(q), v.Count(q)
							if c1 != c2 {
								fail("reader %d: view count drifted %d -> %d", r, c1, c2)
								v.Close()
								return
							}
							res, err := v.BatchSearch([]Rect{q, universe}, BatchOptions{Workers: 2})
							if err != nil {
								fail("reader %d: batch: %v", r, err)
								v.Close()
								return
							}
							if res.Counts[0] != c1 || res.Counts[1] != base {
								fail("reader %d: batch counts %v, want [%d %d]", r, res.Counts, c1, base)
								v.Close()
								return
							}
							nn1 := v.NearestNeighbors(5, Pt(x, y))
							nn2 := v.NearestNeighbors(5, Pt(x, y))
							if len(nn1) != 5 || len(nn2) != 5 {
								fail("reader %d: kNN returned %d/%d results", r, len(nn1), len(nn2))
								v.Close()
								return
							}
							for k := range nn1 {
								if nn1[k].Object != nn2[k].Object || nn1[k].DistSq != nn2[k].DistSq {
									fail("reader %d: kNN drifted on one view at rank %d", r, k)
									v.Close()
									return
								}
								if k > 0 && nn1[k].DistSq < nn1[k-1].DistSq {
									fail("reader %d: kNN out of order", r)
									v.Close()
									return
								}
							}
							v.Close()
							if i > 2 && stop.Load() {
								break
							}
						}
					}(r)
				}

				// One more reader runs view joins (STT reads nodes through
				// Version.Node) concurrently with the writer — the
				// regression case for the parent-pointer data race.
				wg.Add(1)
				go func() {
					defer wg.Done()
					probes := []Item{{Object: 1, Rect: universe}}
					for !stop.Load() {
						v := tree.Snapshot()
						inlj, err := IndexNestedLoopJoinView(v, probes, JoinOptions{Workers: 2}, nil)
						if err != nil || inlj.Pairs != base {
							fail("join reader: INLJ pairs %d err %v, want %d", inlj.Pairs, err, base)
							v.Close()
							return
						}
						stt, err := SynchronizedTreeTraversalJoinView(v, before, JoinOptions{Workers: 2}, nil)
						if err != nil || stt.Pairs == 0 {
							fail("join reader: STT pairs %d err %v", stt.Pairs, err)
							v.Close()
							return
						}
						v.Close()
					}
				}()

				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}

				// The pre-writer view still serves its original epoch.
				if got := before.Epoch(); got != epoch0 {
					t.Fatalf("pinned view changed epoch: %d -> %d", epoch0, got)
				}
				if got := before.Count(universe); got != base {
					t.Fatalf("pinned pre-writer view count %d, want %d", got, base)
				}
				// And the final committed state is intact.
				if got := tree.Count(universe); got != base {
					t.Fatalf("final count %d, want %d", got, base)
				}
				if err := tree.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestBatchAtomicityAndViewJoins checks the remaining view surfaces without
// goroutine scheduling in the way: mutations inside an open batch are
// invisible until Commit (to queries and to freshly pinned views), and the
// view-based joins answer at the pinned epoch while the live join tracks
// the new commit.
func TestBatchAtomicityAndViewJoins(t *testing.T) {
	tree, items := stressFixture(t, ClipStairline, false, 800)
	universe := R(-10, -10, 1100, 1100)

	v := tree.Snapshot()
	defer v.Close()

	batch, err := tree.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := float64(i * 3)
		if err := batch.Insert(R(x, 0, x+1, 1), ObjectID(9000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Not yet committed: neither the old view nor a new one sees the batch.
	if got := v.Count(universe); got != 800 {
		t.Fatalf("pinned view sees open batch: %d", got)
	}
	mid := tree.Snapshot()
	if got := mid.Count(universe); got != 800 {
		t.Fatalf("mid-batch snapshot sees open batch: %d", got)
	}
	mid.Close()
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
	if got := tree.Count(universe); got != 810 {
		t.Fatalf("post-commit count %d, want 810", got)
	}
	if got := v.Count(universe); got != 800 {
		t.Fatalf("pinned view moved after commit: %d", got)
	}

	// View-based INLJ answers at the pinned epoch; the live join sees the
	// committed batch.
	probes := []Item{{Object: 1, Rect: R(-5, -5, 1050, 1050)}}
	onView, err := IndexNestedLoopJoinView(v, probes, JoinOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if onView.Pairs != 800 {
		t.Fatalf("view INLJ pairs %d, want 800", onView.Pairs)
	}
	live, err := IndexNestedLoopJoinWith(tree, probes, JoinOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if live.Pairs != 810 {
		t.Fatalf("live INLJ pairs %d, want 810", live.Pairs)
	}

	// View-based STT: join the pinned view with a second tree; the pair
	// count must match the same join run against a quiesced copy at that
	// epoch (the live STT on the mutated tree differs).
	other, err := New(Options{Dims: 2, Variant: RStarTree, Clipping: ClipStairline})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	ov := other.Snapshot()
	defer ov.Close()
	onViews, err := SynchronizedTreeTraversalJoinView(v, ov, JoinOptions{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SynchronizedTreeTraversalJoin(other, other, nil) // self-join: every item pairs with itself at least
	if err != nil {
		t.Fatal(err)
	}
	if onViews.Pairs == 0 || seq.Pairs == 0 {
		t.Fatal("joins found no pairs; fixture is vacuous")
	}
	// The epoch-pinned join must equal the INLJ of the same two states.
	fromINLJ, err := IndexNestedLoopJoinView(v, items, JoinOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if onViews.Pairs != fromINLJ.Pairs {
		t.Fatalf("view STT pairs %d != view INLJ pairs %d", onViews.Pairs, fromINLJ.Pairs)
	}
}

// TestDeferredPagesReleasedOnClose pins a view, deletes enough objects to
// dissolve nodes (their pages' release is deferred while the older epoch is
// pinned), flushes, and closes the tree with the view still open. Close
// must release the deferred pages anyway — otherwise they would stay
// marked in-use on disk forever, referenced by nothing — so the reopened
// file must pass the same page-accounting audit cbbinspect -verify runs:
// every in-use slot referenced exactly once, the rest on the free list.
func TestDeferredPagesReleasedOnClose(t *testing.T) {
	tree, items := stressFixture(t, ClipStairline, true, 1200)
	path := tree.pager.Path()

	v := tree.Snapshot()
	defer v.Close()
	for _, it := range items[:900] {
		if found, err := tree.Delete(it.Rect, it.Object); err != nil || !found {
			t.Fatalf("delete: found=%v err=%v", found, err)
		}
	}
	if err := tree.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flush must refuse to run while a batch is open (self-deadlock guard).
	b, err := tree.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Flush(); err == nil || !strings.Contains(err.Error(), "open batch") {
		t.Fatalf("Flush with open batch: err=%v, want open-batch error", err)
	}
	if err := tree.Close(); err == nil || !strings.Contains(err.Error(), "open batch") {
		t.Fatalf("Close with open batch: err=%v, want open-batch error", err)
	}
	b.Rollback()
	if err := tree.Close(); err != nil { // view still pinned
		t.Fatal(err)
	}

	// Audit the file: in-use slots == referenced slots, exactly once each.
	snap, fp, err := snapshot.OpenFileReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	refs := make(map[storage.PageID]int)
	refs[snapshot.SuperPage]++
	for _, pid := range snap.Pages {
		refs[pid]++
	}
	for i := 0; i < snap.Layout.IndexPages; i++ {
		refs[snap.Layout.IndexFirst+storage.PageID(i)]++
	}
	for i := 0; i < snap.Layout.ClipPages; i++ {
		refs[snap.Layout.ClipFirst+storage.PageID(i)]++
	}
	slots, err := fp.Slots()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slots {
		switch n := refs[s.ID]; {
		case s.InUse && n == 0:
			t.Errorf("page %d in use but unreferenced (deferred free leaked)", s.ID)
		case s.InUse && n > 1:
			t.Errorf("page %d referenced %d times", s.ID, n)
		case !s.InUse && n > 0:
			t.Errorf("page %d free but referenced", s.ID)
		}
	}
}

// TestBatchRollback checks the error-path counterpart of Commit: a rolled
// back batch leaves no trace — readers, structural accessors, the writer
// lock, and the tree invariants all return to the pre-batch state, for
// in-memory and file-backed trees, clipped and plain.
func TestBatchRollback(t *testing.T) {
	for _, fileBacked := range []bool{false, true} {
		for _, clipping := range []ClipMethod{ClipStairline, ClipNone} {
			t.Run(fmt.Sprintf("file=%v/clip=%v", fileBacked, clipping), func(t *testing.T) {
				tree, items := stressFixture(t, clipping, fileBacked, 600)
				defer tree.Close()
				universe := R(-10, -10, 1100, 1100)
				wantBounds := tree.Bounds()

				batch, err := tree.Begin()
				if err != nil {
					t.Fatal(err)
				}
				// Mutate heavily: inserts, deletes, enough to split and
				// dissolve nodes.
				for i := 0; i < 200; i++ {
					x := float64(i)
					if err := batch.Insert(R(x, 2000, x+1, 2001), ObjectID(50000+i)); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 150; i++ {
					if found, err := batch.Delete(items[i].Rect, items[i].Object); err != nil || !found {
						t.Fatalf("delete %d: found=%v err=%v", i, found, err)
					}
				}
				batch.Rollback()
				batch.Rollback() // idempotent
				if err := batch.Commit(); err == nil {
					t.Fatal("commit after rollback must fail")
				}

				// The writer lock is free again and the state is pre-batch.
				if got := tree.Count(universe); got != 600 {
					t.Fatalf("count after rollback %d, want 600", got)
				}
				if got := tree.Len(); got != 600 {
					t.Fatalf("Len after rollback %d, want 600", got)
				}
				if !tree.Bounds().Equal(wantBounds) {
					t.Fatalf("bounds changed by rollback: %v != %v", tree.Bounds(), wantBounds)
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("invariants after rollback: %v", err)
				}
				// Deleted victims are back, the batch inserts are gone, and
				// new mutations work (parent pointers were restored).
				if n := tree.Count(R(-1, 1999, 300, 2002)); n != 0 {
					t.Fatalf("%d rolled-back inserts still visible", n)
				}
				if err := tree.Insert(R(7, 7, 8, 8), 77777); err != nil {
					t.Fatal(err)
				}
				if found, err := tree.Delete(R(7, 7, 8, 8), 77777); err != nil || !found {
					t.Fatalf("post-rollback mutation: found=%v err=%v", found, err)
				}
				if err := tree.Validate(); err != nil {
					t.Fatal(err)
				}
				if fileBacked {
					if err := tree.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}
