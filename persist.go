package cbb

import (
	"errors"
	"fmt"
	"io"

	"cbb/internal/clipindex"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
)

// This file is the public surface of the persistence subsystem: snapshots of
// a tree (SaveTo / Load, any io.Writer / io.Reader) and file-backed trees
// that serve queries directly off an on-disk page file (Open / Create).
// The format is defined in internal/snapshot: a versioned page file whose
// first page is a checksummed superblock, followed by the paper's Figure 4a
// node pages and Figure 4b clip table.

// ErrReadOnly is returned by mutating operations (Insert, Delete, BulkLoad,
// Flush) on a tree opened with Open: such a tree runs directly off its
// snapshot file and cannot be modified in place. To evolve a snapshot, Load
// it into memory, mutate, and save it again.
var ErrReadOnly = rtree.ErrReadOnly

// snapshotMeta maps the tree's effective options onto a snapshot header.
func (t *Tree) snapshotMeta() snapshot.Meta {
	cfg := t.tree.Config()
	method := snapshot.ClipNone
	switch t.opts.Clipping {
	case ClipStairline:
		method = snapshot.ClipStairline
	case ClipSkyline:
		method = snapshot.ClipSkyline
	}
	return snapshot.Meta{
		Dims:          cfg.Dims,
		Variant:       cfg.Variant,
		MaxEntries:    cfg.MaxEntries,
		MinEntries:    cfg.MinEntries,
		HilbertBits:   cfg.HilbertBits,
		Universe:      cfg.Universe,
		ClipMethod:    method,
		MaxClipPoints: t.opts.MaxClipPoints,
		ClipTau:       t.opts.ClipThreshold,
	}
}

// optionsFromMeta reconstructs the public Options stored in a snapshot
// header.
func optionsFromMeta(m snapshot.Meta) (Options, error) {
	opts := Options{
		Dims:          m.Dims,
		Variant:       m.Variant,
		MaxEntries:    m.MaxEntries,
		MinEntries:    m.MinEntries,
		MaxClipPoints: m.MaxClipPoints,
		ClipThreshold: m.ClipTau,
		Universe:      m.Universe,
	}
	switch m.ClipMethod {
	case snapshot.ClipStairline:
		opts.Clipping = ClipStairline
	case snapshot.ClipSkyline:
		opts.Clipping = ClipSkyline
	case snapshot.ClipNone:
		opts.Clipping = ClipNone
	default:
		return opts, fmt.Errorf("cbb: snapshot has unknown clip method %d", m.ClipMethod)
	}
	return opts, nil
}

// table returns the clip table to persist (nil when clipping is disabled).
func (t *Tree) table() clipindex.Table {
	if t.idx == nil {
		return nil
	}
	return t.idx.Table()
}

// restore assembles a public Tree around a decoded snapshot's R-tree and
// clip table.
func restore(snap *snapshot.Snapshot, base *rtree.Tree) (*Tree, error) {
	opts, err := optionsFromMeta(snap.Meta)
	if err != nil {
		return nil, err
	}
	t := &Tree{opts: opts, tree: base}
	if opts.Clipping != ClipNone {
		idx, err := clipindex.Restore(base, opts.clipParams(), snap.Table)
		if err != nil {
			return nil, err
		}
		t.idx = idx
	}
	return t, nil
}

// SaveTo writes a snapshot of the tree — configuration, node pages, and clip
// table — to w. The snapshot is self-describing: Load and Open reconstruct
// the tree without any out-of-band configuration, and reject corrupt or
// truncated input via magic, version, and checksum validation.
func (t *Tree) SaveTo(w io.Writer) error {
	return snapshot.SaveTo(w, t.tree, t.table(), t.snapshotMeta())
}

// Load reads a snapshot previously written with SaveTo and returns a fully
// in-memory tree. The clip table is restored as saved, not recomputed, so
// queries against the loaded tree produce bit-identical results and I/O
// counts to the original. Structural soundness can be checked on demand with
// Validate.
func Load(r io.Reader) (*Tree, error) {
	snap, pager, err := snapshot.LoadFrom(r)
	if err != nil {
		return nil, err
	}
	base, err := snap.LoadTree(pager)
	if err != nil {
		return nil, err
	}
	return restore(snap, base)
}

// Open opens a snapshot file as a file-backed, read-only tree: node pages
// are decoded on demand from the file through a FilePager, so opening is
// near-instant regardless of index size, and every query pays its page
// accesses against the same I/O counters and optional buffer pool as an
// in-memory tree. Close releases the file. Mutations return ErrReadOnly.
func Open(path string) (*Tree, error) {
	snap, fp, err := snapshot.OpenFile(path)
	if err != nil {
		return nil, err
	}
	base, err := snap.OpenTree(fp)
	if err != nil {
		fp.Close()
		return nil, err
	}
	t, err := restore(snap, base)
	if err != nil {
		fp.Close()
		return nil, err
	}
	t.pager = fp
	return t, nil
}

// Create makes a new in-memory tree bound to a snapshot file at path: the
// file is written immediately (so path is known to be writable) and
// rewritten atomically on every Flush or Close. The tree itself stays fully
// mutable; Create + Flush is the "build once, ship the file" half of the
// workflow whose other half is Open.
func Create(path string, opts Options) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	t.path = path
	if err := t.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// Flush writes the current state of a tree created with Create to its
// snapshot file, atomically (temp file + rename). It returns ErrReadOnly
// for trees opened with Open and an error for trees with no bound file.
func (t *Tree) Flush() error {
	if t.pager != nil {
		return ErrReadOnly
	}
	if t.path == "" {
		return errors.New("cbb: tree has no snapshot file; use Create, or SaveTo an io.Writer")
	}
	return snapshot.WriteFile(t.path, t.tree, t.table(), t.snapshotMeta())
}

// Close releases the tree's persistence resources: a tree created with
// Create is flushed to its snapshot file, and a tree opened with Open
// releases its page file. Closing a tree with no persistence binding is a
// no-op. The tree must not be used afterwards.
func (t *Tree) Close() error {
	if t.pager != nil {
		return t.pager.Close()
	}
	if t.path != "" {
		return t.Flush()
	}
	return nil
}

// ReadOnly reports whether the tree is file-backed via Open and therefore
// rejects mutations with ErrReadOnly.
func (t *Tree) ReadOnly() bool { return t.tree.ReadOnly() }

// Err returns the first background page-fault failure of a file-backed
// tree (an unreadable or corrupt page hit during a query), or nil. Queries
// treat such nodes as empty instead of panicking; callers that need
// certainty check Err after a batch, or Validate/Materialize up front.
func (t *Tree) Err() error { return t.tree.Err() }

// Materialize faults every node of a file-backed tree into memory (a warm
// start), verifying that all pages are readable. It is a no-op for
// in-memory trees and must not run concurrently with queries.
func (t *Tree) Materialize() error { return t.tree.Materialize() }

// FileStats reports the physical page I/O of a tree opened with Open: pages
// actually read from and written to the snapshot file. ok is false for
// trees without a file backing. Unlike IOStats — which counts every logical
// node access — FileStats moves only when a page is faulted in from disk.
func (t *Tree) FileStats() (reads, writes int64, ok bool) {
	if t.pager == nil {
		return 0, 0, false
	}
	reads, writes = t.pager.DiskStats()
	return reads, writes, true
}
