package cbb

import (
	"errors"
	"fmt"
	"io"

	"cbb/internal/clipindex"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

// This file is the public surface of the persistence subsystem: snapshots of
// a tree (SaveTo / Load, any io.Writer / io.Reader) and file-backed trees
// that serve queries directly off an on-disk page file (Open / OpenReadOnly
// / Create). The format is defined in internal/snapshot: a versioned page
// file whose first page is a checksummed superblock, followed by the paper's
// Figure 4a node pages and Figure 4b clip table.
//
// File-backed trees are writable: Insert and Delete mutate the in-memory
// node arena and maintain the clip table incrementally, and Flush commits
// the dirty pages back into the file atomically through a write-ahead log
// (see internal/storage). Only trees opened with OpenReadOnly — or from a
// file the process cannot write — reject mutations.

// ErrReadOnly is returned by mutating operations (Insert, Delete, BulkLoad,
// Flush) on a read-only tree: one opened with OpenReadOnly or OpenMmap, a
// compressed (v2) snapshot, or a file the process lacks write permission to.
// Every public mutating method wraps it so that errors.Is(err, cbb.ErrReadOnly)
// holds without reaching into internal packages.
var ErrReadOnly = rtree.ErrReadOnly

// ErrMmapUnsupported is returned by OpenMmap and OpenShardedMmap on
// platforms without memory-mapped file support; callers fall back to
// OpenReadOnly / OpenSharded.
var ErrMmapUnsupported = storage.ErrMmapUnsupported

// SnapshotFormat selects the on-disk layout of a snapshot written with
// WriteSnapshot or TranscodeSnapshot.
type SnapshotFormat int

// Snapshot formats.
const (
	// SnapshotV1 is the original layout: fixed-size node pages holding raw
	// float64 rectangles. v1 snapshots reopen writable.
	SnapshotV1 SnapshotFormat = snapshot.FormatV1
	// SnapshotV2 is the compressed layout: directory rectangles quantised
	// to 16-bit grid coordinates (conservatively, so query results are
	// bit-identical), leaf rectangles delta-coded losslessly, and the clip
	// table quantised against the universe. Typically 2–4× smaller on disk
	// and in buffer-pool residency; v2 snapshots open read-only — use
	// TranscodeSnapshot to convert back to v1 when a writable copy is
	// needed.
	SnapshotV2 SnapshotFormat = snapshot.FormatV2
)

// snapshotMeta maps the tree's effective options onto a snapshot header.
func (t *Tree) snapshotMeta() snapshot.Meta {
	cfg := t.tree.Config()
	method := snapshot.ClipNone
	switch t.opts.Clipping {
	case ClipStairline:
		method = snapshot.ClipStairline
	case ClipSkyline:
		method = snapshot.ClipSkyline
	}
	return snapshot.Meta{
		Dims:          cfg.Dims,
		Variant:       cfg.Variant,
		MaxEntries:    cfg.MaxEntries,
		MinEntries:    cfg.MinEntries,
		HilbertBits:   cfg.HilbertBits,
		Universe:      cfg.Universe,
		ClipMethod:    method,
		MaxClipPoints: t.opts.MaxClipPoints,
		ClipTau:       t.opts.ClipThreshold,
	}
}

// optionsFromMeta reconstructs the public Options stored in a snapshot
// header.
func optionsFromMeta(m snapshot.Meta) (Options, error) {
	opts := Options{
		Dims:          m.Dims,
		Variant:       m.Variant,
		MaxEntries:    m.MaxEntries,
		MinEntries:    m.MinEntries,
		MaxClipPoints: m.MaxClipPoints,
		ClipThreshold: m.ClipTau,
		Universe:      m.Universe,
	}
	switch m.ClipMethod {
	case snapshot.ClipStairline:
		opts.Clipping = ClipStairline
	case snapshot.ClipSkyline:
		opts.Clipping = ClipSkyline
	case snapshot.ClipNone:
		opts.Clipping = ClipNone
	default:
		return opts, fmt.Errorf("cbb: snapshot has unknown clip method %d", m.ClipMethod)
	}
	return opts, nil
}

// table returns the clip table to persist (nil when clipping is disabled).
func (t *Tree) table() clipindex.Table {
	if t.idx == nil {
		return nil
	}
	return t.idx.Table()
}

// restore assembles a public Tree around a decoded snapshot's R-tree and
// clip table.
func restore(snap *snapshot.Snapshot, base *rtree.Tree) (*Tree, error) {
	opts, err := optionsFromMeta(snap.Meta)
	if err != nil {
		return nil, err
	}
	t := &Tree{opts: opts, tree: base}
	if opts.Clipping != ClipNone {
		idx, err := clipindex.Restore(base, opts.clipParams(), snap.Table)
		if err != nil {
			return nil, err
		}
		t.idx = idx
	}
	return t, nil
}

// SaveTo writes a snapshot of the tree — configuration, node pages, and clip
// table — to w. The snapshot is self-describing: Load and Open reconstruct
// the tree without any out-of-band configuration, and reject corrupt or
// truncated input via magic, version, and checksum validation.
func (t *Tree) SaveTo(w io.Writer) error {
	return snapshot.SaveTo(w, t.tree, t.table(), t.snapshotMeta())
}

// SaveToFormat is SaveTo with an explicit snapshot format; SaveTo is
// equivalent to SaveToFormat(w, SnapshotV1).
func (t *Tree) SaveToFormat(w io.Writer, format SnapshotFormat) error {
	meta := t.snapshotMeta()
	meta.Format = int(format)
	return snapshot.SaveTo(w, t.tree, t.table(), meta)
}

// WriteSnapshot writes the tree as a snapshot file at path in the given
// format, atomically (temp file + rename). Unlike Flush it does not bind the
// tree to the file: it is the "export" operation, typically used to ship a
// compressed (SnapshotV2) copy of a tree for read-only serving via Open,
// OpenReadOnly, or OpenMmap.
func (t *Tree) WriteSnapshot(path string, format SnapshotFormat) error {
	meta := t.snapshotMeta()
	meta.Format = int(format)
	return snapshot.WriteFile(path, t.tree, t.table(), meta)
}

// TranscodeSnapshot rewrites the snapshot file at src into dst in the given
// format, streaming one node page at a time — the tree is never loaded, so a
// beyond-RAM snapshot converts on a small machine. src is opened strictly
// read-only and dst is written atomically, so src == dst compacts in place.
// v1→v2 compresses; v2→v1 produces a writable snapshot again.
func TranscodeSnapshot(src, dst string, format SnapshotFormat) error {
	return snapshot.Transcode(src, dst, int(format))
}

// Load reads a snapshot previously written with SaveTo and returns a fully
// in-memory tree. The clip table is restored as saved, not recomputed, so
// queries against the loaded tree produce bit-identical results and I/O
// counts to the original. Structural soundness can be checked on demand with
// Validate.
func Load(r io.Reader) (*Tree, error) {
	snap, pager, err := snapshot.LoadFrom(r)
	if err != nil {
		return nil, err
	}
	base, err := snap.LoadTree(pager)
	if err != nil {
		return nil, err
	}
	return restore(snap, base)
}

// Open opens a snapshot file as a file-backed tree: node pages are decoded
// on demand from the file through a FilePager, so opening is near-instant
// regardless of index size, and every query pays its page accesses against
// the same I/O counters and optional buffer pool as an in-memory tree.
//
// The tree is writable when the file is: Insert and Delete work against the
// faulted-in node arena (maintaining the clip table incrementally), and
// Flush writes the dirty pages, clip table, and superblock back into the
// file in one atomic, WAL-protected commit. If the file cannot be opened
// for writing (e.g. mode 0444 or a read-only mount) the tree falls back to
// read-only and mutations return ErrReadOnly. Close commits pending changes
// and releases the file.
//
// A commit interrupted by a crash is recovered on the next Open: a
// committed write-ahead log next to the file is replayed, a torn one is
// discarded, so the tree reopens at either the pre- or the post-commit
// state, never a mix.
func Open(path string) (*Tree, error) {
	return openFile(path, false)
}

// OpenReadOnly opens a snapshot file like Open but explicitly read-only:
// mutations and Flush return ErrReadOnly regardless of file permissions.
// One exception to "never writes": if a crashed writer left a committed
// write-ahead log next to a writable file, opening recovers it (replaying
// the WAL in place) before serving reads, exactly as Open would — on
// genuinely read-only media the recovered state is instead served from
// memory and the medium stays untouched.
func OpenReadOnly(path string) (*Tree, error) {
	return openFile(path, true)
}

func openFile(path string, readonly bool) (*Tree, error) {
	snap, fp, err := snapshot.OpenFile(path)
	if err != nil {
		return nil, err
	}
	if fp.ReadOnlyFile() {
		readonly = true
	}
	if snap.Meta.Format >= snapshot.FormatV2 {
		// Compressed snapshots are read-only by construction: their pages
		// are sized to the encoded node, so a mutated node might not fit
		// back into its slot. Open degrades to read-only instead of failing.
		readonly = true
	}
	if !readonly {
		// All mutations of the page file flow through the journal, so a
		// Flush commits them atomically via the write-ahead log.
		if err := fp.EnableJournal(); err != nil {
			fp.Close()
			return nil, err
		}
	}
	base, err := snap.OpenTree(fp, readonly)
	if err != nil {
		fp.Close()
		return nil, err
	}
	t, err := restore(snap, base)
	if err != nil {
		fp.Close()
		return nil, err
	}
	t.pager = fp
	return t, nil
}

// OpenMmap opens a snapshot file read-only with node pages served straight
// out of a memory mapping: queries decode nodes in place from the mapped
// file, with no read syscalls and no payload copies, and cold pages are
// faulted in by the kernel on first touch. This is the zero-copy path for
// serving a beyond-RAM snapshot — especially a compressed (SnapshotV2) one —
// with the OS page cache as the only buffer.
//
// Semantics match OpenReadOnly: mutations return ErrReadOnly, a committed
// write-ahead log next to the file is served from an in-memory overlay and
// left on disk. On platforms without mmap support it fails with
// ErrMmapUnsupported; fall back to OpenReadOnly.
func OpenMmap(path string) (*Tree, error) {
	ms, err := storage.OpenMmapStore(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Tree, error) {
		ms.Close()
		return nil, err
	}
	snap, err := snapshot.Read(ms)
	if err != nil {
		return fail(err)
	}
	base, err := snap.OpenTree(ms, true)
	if err != nil {
		return fail(err)
	}
	t, err := restore(snap, base)
	if err != nil {
		return fail(err)
	}
	t.mstore = ms
	return t, nil
}

// Create makes a new, empty, writable tree bound to a snapshot file at
// path: the file is written immediately (so path is known to be writable)
// and the tree is file-backed from the start — Insert, Delete, and BulkLoad
// work as on any tree, and every Flush or Close commits the accumulated
// changes into the file atomically through the write-ahead log. Create +
// Flush is the "build once, ship the file" half of the workflow whose other
// half is Open.
func Create(path string, opts Options) (*Tree, error) {
	t, err := New(opts)
	if err != nil {
		return nil, err
	}
	meta := t.snapshotMeta()
	meta.PageSize = snapshot.PageSizeFor(t.opts.MaxEntries, t.opts.Dims)
	fp, err := storage.CreateFilePager(path, meta.PageSize)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Tree, error) {
		fp.Close()
		return nil, err
	}
	if err := fp.EnableJournal(); err != nil {
		return fail(err)
	}
	if err := snapshot.Write(fp, t.tree, t.table(), meta); err != nil {
		return fail(err)
	}
	if err := fp.CommitJournal(); err != nil {
		return fail(err)
	}
	if err := t.tree.AttachStore(fp, nil); err != nil {
		return fail(err)
	}
	t.pager = fp
	return t, nil
}

// Flush commits every change since the last flush — dirty node pages, the
// clip table, the node index, and the superblock — back into the tree's
// snapshot file as one atomic transaction: the page images are made durable
// in a write-ahead log first, then applied in place. It returns ErrReadOnly
// for read-only trees and an error for trees with no bound file. A tree
// with nothing to commit just syncs the file.
func (t *Tree) Flush() error {
	if t.batchOpen.Load() {
		return errors.New("cbb: Flush with an open batch; Commit or Rollback it first")
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.flushLocked()
}

func (t *Tree) flushLocked() error {
	if t.mstore != nil {
		return fmt.Errorf("cbb: flush: %w", ErrReadOnly)
	}
	if t.pager == nil {
		return errors.New("cbb: tree has no snapshot file; use Create or Open, or SaveTo an io.Writer")
	}
	if t.tree.ReadOnly() {
		return fmt.Errorf("cbb: flush: %w", ErrReadOnly)
	}
	if !t.tree.Dirty() {
		return t.pager.CommitJournal() // commits table-only changes, if any; otherwise a sync
	}
	if err := snapshot.Rewrite(t.pager, t.tree, t.table(), t.snapshotMeta()); err != nil {
		// Roll the staged page mutations back so a failed flush leaves the
		// file binding at its last committed state.
		t.pager.DiscardJournal()
		return err
	}
	return t.pager.CommitJournal()
}

// Close releases the tree's persistence resources: a writable file-backed
// tree (Create or Open) is flushed — atomically, through the write-ahead
// log — and its page file released; a read-only tree just releases the
// file. Closing a tree with no persistence binding is a no-op. The tree
// must not be used afterwards.
func (t *Tree) Close() error {
	if t.batchOpen.Load() {
		return errors.New("cbb: Close with an open batch; Commit or Rollback it first")
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.mstore != nil {
		ms := t.mstore
		t.mstore = nil
		return ms.Close()
	}
	if t.pager == nil {
		return nil
	}
	var err error
	if !t.tree.ReadOnly() {
		err = t.flushLocked()
		if err == nil {
			// Freed pages whose release was deferred because a read view
			// pinned an older epoch must not leak past the file's lifetime:
			// any surviving view is hydrated and will never read the file,
			// so releasing them all here is safe — and keeps every in-use
			// slot referenced by the snapshot structure.
			if n, rerr := t.tree.ReleaseFreedPages(); rerr != nil {
				err = rerr
			} else if n > 0 {
				err = t.pager.CommitJournal()
			}
		}
	}
	if cerr := t.pager.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadOnly reports whether the tree rejects mutations with ErrReadOnly: it
// was opened with OpenReadOnly, or with Open from an unwritable file.
func (t *Tree) ReadOnly() bool { return t.tree.ReadOnly() }

// Err returns the first background page-fault failure of a file-backed
// tree (an unreadable or corrupt page hit during a query), or nil. Queries
// treat such nodes as empty instead of panicking; callers that need
// certainty check Err after a batch, or Validate/Materialize up front.
func (t *Tree) Err() error { return t.tree.Err() }

// Materialize faults every node of a file-backed tree into memory (a warm
// start), verifying that all pages are readable. It is a no-op for
// in-memory trees and must not run concurrently with queries.
func (t *Tree) Materialize() error { return t.tree.Materialize() }

// FileStats reports the physical page I/O of a tree opened with Open: pages
// actually read from and written to the snapshot file. ok is false for
// trees without a file backing. Unlike IOStats — which counts every logical
// node access — FileStats moves only when a page is faulted in from disk.
func (t *Tree) FileStats() (reads, writes int64, ok bool) {
	switch {
	case t.pager != nil:
		reads, writes = t.pager.DiskStats()
		return reads, writes, true
	case t.mstore != nil:
		reads, writes = t.mstore.DiskStats()
		return reads, writes, true
	default:
		return 0, 0, false
	}
}
