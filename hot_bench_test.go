package cbb

// Microbenchmarks of the query hot path. Unlike the figure benchmarks in
// bench_test.go (which run whole experiments), these isolate the per-query
// CPU cost of the read path — the quantity the paper argues is negligible
// next to the I/O savings of clipping. They are tracked by BENCH_baseline.json
// and run as a CI smoke test; see the README's "Performance" section.

import (
	"fmt"
	"math/rand"
	"testing"
)

// hotPathTree builds an in-memory bulk-loaded RR*-tree over n uniformly
// distributed rectangles in [0,1)^dims together with a deterministic query
// set of roughly 0.1%-selectivity windows.
func hotPathTree(b *testing.B, n, dims int, clipping ClipMethod) (*Tree, []Rect) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	items := make([]Item, n)
	for i := range items {
		lo := make(Point, dims)
		hi := make(Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = rng.Float64()
			hi[d] = lo[d] + 0.001*rng.Float64()
		}
		items[i] = Item{Object: ObjectID(i), Rect: Rect{Lo: lo, Hi: hi}}
	}
	tree, err := New(Options{Dims: dims, Variant: RRStarTree, Clipping: clipping})
	if err != nil {
		b.Fatal(err)
	}
	if err := tree.BulkLoad(items); err != nil {
		b.Fatal(err)
	}
	side := 0.1 // ~0.1% selectivity in 2d
	queries := make([]Rect, 256)
	for i := range queries {
		lo := make(Point, dims)
		hi := make(Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = rng.Float64() * (1 - side)
			hi[d] = lo[d] + side
		}
		queries[i] = Rect{Lo: lo, Hi: hi}
	}
	return tree, queries
}

// BenchmarkSearchHot measures one in-memory range query per iteration,
// cycling through a fixed query set, with clipping enabled (CSTA) and
// disabled. Steady-state searches perform zero heap allocations; see
// TestSearchZeroAllocs.
func BenchmarkSearchHot(b *testing.B) {
	for _, dims := range []int{2, 3} {
		for _, cm := range []ClipMethod{ClipNone, ClipStairline} {
			name := fmt.Sprintf("dims=%d/clip=%s", dims, cm)
			b.Run(name, func(b *testing.B) {
				tree, queries := hotPathTree(b, 50000, dims, cm)
				hits := 0
				visit := func(ObjectID, Rect) bool { hits++; return true }
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tree.Search(queries[i%len(queries)], visit)
				}
				b.StopTimer()
				if hits == 0 {
					b.Fatal("queries matched nothing; benchmark is vacuous")
				}
			})
		}
	}
}

// BenchmarkKNN measures a 10-nearest-neighbour query per iteration over the
// same uniform tree.
func BenchmarkKNN(b *testing.B) {
	tree, _ := hotPathTree(b, 50000, 2, ClipNone)
	rng := rand.New(rand.NewSource(7))
	points := make([]Point, 256)
	for i := range points {
		points[i] = Pt(rng.Float64(), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(tree.NearestNeighbors(10, points[i%len(points)]))
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("no neighbours found; benchmark is vacuous")
	}
}
