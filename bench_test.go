package cbb_test

// This file contains one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the mapping). Each benchmark wraps the
// corresponding experiment from internal/experiments at a reduced scale so
// that `go test -bench=. -benchmem` regenerates the full evaluation in a few
// minutes; the cbbench command runs the same experiments at larger scales.
//
// Reported custom metrics use the paper's units: percentages for dead space
// and I/O reductions, counts for leaf accesses.

import (
	"fmt"
	"testing"

	"cbb"

	"cbb/internal/core"
	"cbb/internal/experiments"
	"cbb/internal/rtree"
)

// benchConfig is the shared reduced-scale configuration for benchmark runs.
func benchConfig(datasetNames ...string) experiments.Config {
	return experiments.Config{
		Scale:          6000,
		Queries:        60,
		Seed:           42,
		SamplesPerNode: 128,
		Datasets:       datasetNames,
	}
}

// BenchmarkFig01_NodeStats reproduces Figure 1: node overlap, dead space and
// I/O optimality of unclipped R-trees on rea02 and axo03.
func BenchmarkFig01_NodeStats(b *testing.B) {
	cfg := benchConfig("rea02", "axo03")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig01(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var dead float64
			for _, row := range res.Rows {
				dead += row.AvgDeadSpace
			}
			b.ReportMetric(100*dead/float64(len(res.Rows)), "avg_dead_space_%")
		}
	}
}

// BenchmarkFig08_BoundingExample reproduces Figure 8: dead space of the
// eight bounding shapes on the running example's two leaf nodes.
func BenchmarkFig08_BoundingExample(b *testing.B) {
	cfg := experiments.Config{Seed: 42}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig08(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.Leaves[0]["CBBSTA"], "csta_dead_space_%")
			b.ReportMetric(100*res.Leaves[0]["MBB"], "mbb_dead_space_%")
		}
	}
}

// BenchmarkFig09_BoundingComparison reproduces Figure 9: average dead space
// and representation cost of each bounding method over RR*-tree leaf nodes
// of the 2d datasets.
func BenchmarkFig09_BoundingComparison(b *testing.B) {
	cfg := benchConfig("par02", "rea02")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig09(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Dataset == "rea02" && row.Method == "CBBSTA" {
					b.ReportMetric(100*row.DeadSpace, "csta_dead_space_%")
					b.ReportMetric(row.Points, "csta_points")
				}
			}
		}
	}
}

// BenchmarkFig10_DeadSpaceClipped reproduces Figure 10: dead space clipped
// away per node as k grows, for both clipping methods.
func BenchmarkFig10_DeadSpaceClipped(b *testing.B) {
	cfg := benchConfig("par02", "axo03")
	cfg.Variants = []rtree.Variant{rtree.RStar, rtree.RRStar}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var bestShare float64
			for _, row := range res.Rows {
				if row.Method == "CSTA" && row.ClippedShareOfDead > bestShare {
					bestShare = row.ClippedShareOfDead
				}
			}
			b.ReportMetric(100*bestShare, "max_clipped_share_%")
		}
	}
}

// BenchmarkFig11_RangeQueryIO reproduces Figure 11: leaf accesses of clipped
// R-trees relative to their unclipped counterparts across selectivities.
func BenchmarkFig11_RangeQueryIO(b *testing.B) {
	cfg := benchConfig("rea02", "axo03")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var rel float64
			var n int
			for _, row := range res.Rows {
				if row.Method == "CSTA" {
					rel += row.Relative
					n++
				}
			}
			b.ReportMetric(100*rel/float64(n), "csta_relative_leaf_io_%")
		}
	}
}

// BenchmarkTable1_IOReduction reproduces Table I: average I/O reduction per
// variant and query profile for both clipping methods.
func BenchmarkTable1_IOReduction(b *testing.B) {
	cfg := benchConfig("rea02", "axo03", "par02")
	for i := 0; i < b.N; i++ {
		fig11, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1 := experiments.AggregateTable1(fig11)
		if i == 0 {
			for _, c := range t1.Cells {
				if c.Variant == "Total" && c.Profile == "Total" {
					b.ReportMetric(100*c.SkyReduction, "csky_total_reduction_%")
					b.ReportMetric(100*c.StaReduction, "csta_total_reduction_%")
				}
			}
		}
	}
}

// BenchmarkFig12_UpdateCost reproduces Figure 12: expected re-clips per
// insertion and their causes.
func BenchmarkFig12_UpdateCost(b *testing.B) {
	cfg := benchConfig("par02", "axo03")
	cfg.Variants = []rtree.Variant{rtree.Quadratic, rtree.RRStar}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var per float64
			for _, row := range res.Rows {
				per += row.ReclipsPerInsert
			}
			b.ReportMetric(per/float64(len(res.Rows)), "reclips_per_insert")
		}
	}
}

// BenchmarkFig13_StorageOverhead reproduces Figure 13: the storage breakdown
// of clipped RR*-trees.
func BenchmarkFig13_StorageOverhead(b *testing.B) {
	cfg := benchConfig("rea02", "axo03")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var share float64
			for _, row := range res.Rows {
				if row.Method == "CSTA" {
					share += row.ClipShare
				}
			}
			b.ReportMetric(100*share/2, "csta_storage_overhead_%")
		}
	}
}

// BenchmarkFig14_BuildOverhead reproduces Figure 14: build time of the
// variants relative to the RR*-tree and the share spent computing CBBs.
func BenchmarkFig14_BuildOverhead(b *testing.B) {
	cfg := benchConfig("par02")
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Label == "CSTA-RR*-tree" {
					b.ReportMetric(100*row.ClipShareOfIt, "csta_clip_share_of_build_%")
				}
			}
		}
	}
}

// BenchmarkJoin_INLJ reproduces the index-nested-loop-join half of the
// spatial-join evaluation (axo03 ⋈ den03).
func BenchmarkJoin_INLJ(b *testing.B) {
	cfg := benchConfig()
	cfg.Variants = []rtree.Variant{rtree.RRStar}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunJoin(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Strategy == "INLJ" {
					b.ReportMetric(100*row.Reduction, "inlj_io_reduction_%")
				}
			}
		}
	}
}

// BenchmarkJoin_STT reproduces the synchronised-tree-traversal half of the
// spatial-join evaluation (axo03 ⋈ den03).
func BenchmarkJoin_STT(b *testing.B) {
	cfg := benchConfig()
	cfg.Variants = []rtree.Variant{rtree.RRStar}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunJoin(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				if row.Strategy == "STT" {
					b.ReportMetric(100*row.Reduction, "stt_io_reduction_%")
				}
			}
		}
	}
}

// BenchmarkFig15_Scalability reproduces Figure 15 at benchmark scale: query
// latency of clipped and unclipped HR-/RR*-trees on the synthetic datasets.
func BenchmarkFig15_Scalability(b *testing.B) {
	cfg := benchConfig()
	cfg.Queries = 40
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var clipped, unclipped float64
			for _, row := range res.Rows {
				switch row.Index {
				case "CSTA-RR*":
					clipped += float64(row.LeafIO)
				case "RR*":
					unclipped += float64(row.LeafIO)
				}
			}
			if unclipped > 0 {
				b.ReportMetric(100*clipped/unclipped, "csta_rrstar_relative_io_%")
			}
		}
	}
}

// BenchmarkAblation_ScoreApproximation quantifies the design choice of
// Figure 5 (the additive score approximation used by Algorithm 1): it
// compares the approximate and the exact clipped volume over every node of a
// clipped RR*-tree and reports the mean relative error — an ablation called
// out in DESIGN.md.
func BenchmarkAblation_ScoreApproximation(b *testing.B) {
	cfg := benchConfig("axo03")
	ds, err := cfg.LoadDataset("axo03")
	if err != nil {
		b.Fatal(err)
	}
	tree, _, err := experiments.BuildTree(ds, rtree.RRStar)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var relErr float64
			var nodes int
			for id, clips := range idx.Table() {
				info, err := tree.Node(id)
				if err != nil || len(clips) == 0 {
					continue
				}
				exact := core.ClippedVolume(info.MBB, clips)
				approx := core.ApproxClippedVolume(clips)
				if exact > 0 {
					diff := approx - exact
					if diff < 0 {
						diff = -diff
					}
					relErr += diff / exact
					nodes++
				}
			}
			if nodes > 0 {
				b.ReportMetric(100*relErr/float64(nodes), "score_approx_error_%")
			}
			b.ReportMetric(float64(idx.Table().ClipPointCount()), "clip_points")
		}
	}
}

// BenchmarkBatchSearchWorkers measures the parallel query engine: the same
// range-query batch over the uniform par02 dataset executed by 1, 2, 4, and
// 8 workers. Wall-clock scaling tracks the number of physical cores (on a
// single-core machine all worker counts perform alike); the reported leaf
// reads are identical across worker counts by construction.
func BenchmarkBatchSearchWorkers(b *testing.B) {
	cfg := benchConfig("par02")
	cfg.Scale = 20000
	cfg.Queries = 300
	ds, err := cfg.LoadDataset("par02")
	if err != nil {
		b.Fatal(err)
	}
	querySet, err := cfg.QuerySet(ds)
	if err != nil {
		b.Fatal(err)
	}
	var batch []cbb.Rect
	for _, qs := range querySet {
		batch = append(batch, qs...)
	}
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RStarTree})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]cbb.Item, len(ds.Items))
	copy(items, ds.Items)
	if err := tree.BulkLoad(items); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var leafReads int64
			for i := 0; i < b.N; i++ {
				res, err := cbb.BatchSearch(tree, batch, cbb.BatchOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				leafReads = res.IO.LeafReads
			}
			b.ReportMetric(float64(leafReads), "leaf_reads")
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}
