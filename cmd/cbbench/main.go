// Command cbbench reproduces the paper's evaluation: it runs any (or all) of
// the experiments behind the tables and figures of Šidlauskas et al.,
// "Improving Spatial Data Processing by Clipping Minimum Bounding Boxes"
// (ICDE 2018), on the synthetic stand-in datasets, and prints the results as
// text tables.
//
// Usage:
//
//	cbbench -exp all                 # run everything at the default scale
//	cbbench -exp fig11 -scale 50000  # range-query I/O at a larger scale
//	cbbench -exp table1 -datasets rea02,axo03 -variants "R*-tree,RR*-tree"
//
// Experiments: fig01, fig08, fig09, fig10, fig11, table1, fig12, fig13,
// fig14, join, fig15, throughput, coldstart, coldformats, update, sharded, serve, all. The throughput
// experiment goes beyond the paper: it sweeps the parallel query engine's
// worker count (bounded by -workers) and reports queries/sec next to the
// leaf-access metric. The coldstart experiment measures file-backed query
// I/O of a freshly opened snapshot under varying buffer-pool sizes, and the
// update experiment measures query I/O and clip-maintenance cost under mixed
// insert/search traffic against a writable file-backed tree (clipped vs.
// plain), including the pages written back per WAL-committed flush. The
// sharded experiment loads the skewed hot02 workload through concurrent
// writers into the Hilbert-sharded multi-tree engine (shard count bounded by
// -shards) and reports ingest throughput against the single-writer-mutex
// baseline plus the skew-driven shard rebalancing behaviour. The serve
// experiment drives the internal/server HTTP handler in-process (no
// network) and reports serving-path latency percentiles for sequential
// (direct) and concurrent (coalesced) clients.
//
// With -save DIR every built tree is saved as a snapshot into DIR, and with
// -load DIR previously saved snapshots are reopened instead of rebuilding,
// so the index construction cost is paid once across experiment runs:
//
//	cbbench -exp fig11 -save /tmp/cbbcache   # build and save
//	cbbench -exp fig13 -load /tmp/cbbcache   # reuse the same trees
//
// With -cpuprofile FILE and/or -memprofile FILE the run writes pprof
// profiles (CPU over the whole run; heap after the final experiment), so
// hot-path regressions can be diagnosed without editing code:
//
//	cbbench -exp fig11 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cbb/internal/datasets"
	"cbb/internal/experiments"
	"cbb/internal/rtree"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (fig01,fig08,fig09,fig10,fig11,table1,fig12,fig13,fig14,join,fig15,throughput,coldstart,coldformats,update,sharded,serve,all)")
		scale      = flag.Int("scale", 20000, "objects per dataset")
		queries    = flag.Int("queries", 200, "queries per selectivity profile")
		seed       = flag.Int64("seed", 42, "random seed")
		samples    = flag.Int("samples", 256, "Monte-Carlo samples per node for dead-space estimation")
		dsFlag     = flag.String("datasets", "", "comma-separated dataset subset (default: all seven)")
		varFlag    = flag.String("variants", "", "comma-separated variant subset (QR-tree,HR-tree,R*-tree,RR*-tree)")
		tau        = flag.Float64("tau", 0.025, "clip-point volume threshold τ")
		workers    = flag.Int("workers", 8, "maximum worker count of the parallel throughput sweep")
		shards     = flag.Int("shards", 4, "shard count of the sharded multi-writer ingest experiment")
		saveDir    = flag.String("save", "", "directory to save built-tree snapshots into (build cost paid once)")
		loadDir    = flag.String("load", "", "directory to load previously saved tree snapshots from")
		listOnly   = flag.Bool("list", false, "list datasets and experiments, then exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()

	// Profile teardown is explicit (not deferred) so the profiles are still
	// written when an experiment fails and we exit non-zero.
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("creating CPU profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("starting CPU profile: %w", err))
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProfile != "" {
		stopCPU := stopProfiles
		stopProfiles = func() {
			stopCPU()
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(fmt.Errorf("creating heap profile: %w", err))
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(fmt.Errorf("writing heap profile: %w", err))
			}
		}
	}

	if *listOnly {
		fmt.Println("datasets:")
		for _, s := range datasets.Specs {
			fmt.Printf("  %-6s %dd  default %d objects  (%s)\n", s.Name, s.Dims, s.DefaultSize, s.Description)
		}
		fmt.Println("experiments: fig01 fig08 fig09 fig10 fig11 table1 fig12 fig13 fig14 join fig15 throughput coldstart coldformats update sharded serve all")
		stopProfiles()
		return
	}

	cfg := experiments.Config{
		Scale:          *scale,
		Queries:        *queries,
		Seed:           *seed,
		SamplesPerNode: *samples,
		Tau:            *tau,
		SaveDir:        *saveDir,
		LoadDir:        *loadDir,
	}
	if *dsFlag != "" {
		cfg.Datasets = splitList(*dsFlag)
	}
	if *varFlag != "" {
		variants, err := parseVariants(splitList(*varFlag))
		if err != nil {
			fatal(err)
		}
		cfg.Variants = variants
	}

	runner := newRunner(cfg, *workers, *shards)
	which := strings.ToLower(strings.TrimSpace(*exp))
	names := []string{which}
	if which == "all" {
		names = []string{"fig01", "fig08", "fig09", "fig10", "fig11", "table1", "fig12", "fig13", "fig14", "join", "fig15", "throughput", "coldstart", "coldformats", "update", "sharded", "serve"}
	}
	for _, name := range names {
		if err := runner.run(name); err != nil {
			stopProfiles()
			fatal(err)
		}
	}
	stopProfiles()
}

type runner struct {
	cfg     experiments.Config
	workers int
	shards  int
	fig11   *experiments.Fig11Result // cached for table1
}

func newRunner(cfg experiments.Config, workers, shards int) *runner {
	return &runner{cfg: cfg, workers: workers, shards: shards}
}

func (r *runner) run(name string) error {
	start := time.Now()
	var tables []*experiments.Table
	switch name {
	case "fig01":
		res, err := experiments.RunFig01(r.cfg)
		if err != nil {
			return err
		}
		tables = res.Tables()
	case "fig08":
		res, err := experiments.RunFig08(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig09":
		res, err := experiments.RunFig09(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig10":
		res, err := experiments.RunFig10(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig11":
		res, err := r.ensureFig11()
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "table1":
		res, err := r.ensureFig11()
		if err != nil {
			return err
		}
		tables = []*experiments.Table{experiments.AggregateTable1(res).Table()}
	case "fig12":
		res, err := experiments.RunFig12(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig13":
		res, err := experiments.RunFig13(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig14":
		res, err := experiments.RunFig14(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "join":
		res, err := experiments.RunJoin(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "fig15":
		res, err := experiments.RunFig15(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "throughput":
		res, err := experiments.RunThroughput(r.cfg, r.workers)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "coldstart":
		res, err := experiments.RunColdStart(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "coldformats":
		res, err := experiments.RunColdFormats(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "update":
		res, err := experiments.RunUpdateWorkload(r.cfg)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	case "sharded":
		res, err := experiments.RunSharded(r.cfg, r.shards, r.shards)
		if err != nil {
			return err
		}
		tables = res.Tables()
	case "serve":
		res, err := experiments.RunServe(r.cfg, r.workers)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{res.Table()}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}
	fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func (r *runner) ensureFig11() (*experiments.Fig11Result, error) {
	if r.fig11 != nil {
		return r.fig11, nil
	}
	res, err := experiments.RunFig11(r.cfg)
	if err != nil {
		return nil, err
	}
	r.fig11 = res
	return res, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseVariants(names []string) ([]rtree.Variant, error) {
	var out []rtree.Variant
	for _, n := range names {
		switch strings.ToLower(n) {
		case "qr-tree", "qr", "quadratic":
			out = append(out, rtree.Quadratic)
		case "hr-tree", "hr", "hilbert":
			out = append(out, rtree.Hilbert)
		case "r*-tree", "r*", "rstar":
			out = append(out, rtree.RStar)
		case "rr*-tree", "rr*", "rrstar":
			out = append(out, rtree.RRStar)
		default:
			return nil, fmt.Errorf("unknown variant %q", n)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbbench:", err)
	os.Exit(1)
}
