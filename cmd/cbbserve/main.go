// Command cbbserve exposes a live clipped-bounding-box tree over an HTTP
// JSON API (see internal/server for the endpoint contract). It boots an
// engine from a synthetic dataset, a datagen CSV, or an existing snapshot
// file, serves until SIGINT/SIGTERM, then drains in-flight requests within
// a deadline and flushes and closes the tree.
//
// Examples:
//
//	cbbserve -addr :8089 -dataset par02 -n 20000
//	cbbserve -addr :8089 -data objects.csv -shards 8
//	cbbserve -addr :8089 -file tree.cbb -buffer-pool 1024
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux; served only behind -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbb"
	"cbb/internal/datasets"
	"cbb/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8089", "listen address")

		dataset = flag.String("dataset", "", "synthetic dataset to load (see cmd/datagen; e.g. par02)")
		n       = flag.Int("n", 0, "synthetic object count (0 = dataset default)")
		seed    = flag.Int64("seed", 42, "synthetic dataset seed")
		data    = flag.String("data", "", "CSV object file to load (datagen format: lo...,hi... per line)")
		file    = flag.String("file", "", "snapshot file: opened if it exists, created and bulk-loaded otherwise (single tree only)")

		variant    = flag.String("variant", "rr*", "R-tree variant (qr, hr, r*, rr*)")
		clip       = flag.String("clip", "csta", "clipping method (csta, csky, none)")
		shards     = flag.Int("shards", 0, "shard count for a ShardedTree engine (0 = single tree)")
		bufferPool = flag.Int("buffer-pool", 0, "buffer-pool capacity in pages for file-backed trees (0 = none)")

		inflight     = flag.Int("inflight", 0, "max concurrently served data requests (0 = default 256, <0 = unlimited)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max wait for an in-flight slot before shedding with 429 (0 = default 50ms)")
		coalesce     = flag.Duration("coalesce", 0, "point-search coalescing window (0 = default 200µs, <0 = disabled)")
		coalesceMax  = flag.Int("coalesce-max", 0, "max point searches per coalesced batch (0 = default 64)")
		workers      = flag.Int("workers", 1, "worker goroutines per batch search (0 = GOMAXPROCS)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	)
	flag.Parse()

	// Profiling is opt-in and served on its own listener so the data API's
	// in-flight limiting and shedding never apply to (or get skewed by)
	// profile scrapes, and the debug surface is never exposed on the public
	// address by accident.
	if *pprofAddr != "" {
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listener: %w", err))
		}
		log.Printf("cbbserve: pprof on http://%s/debug/pprof/", pl.Addr())
		go func() {
			// http.DefaultServeMux carries the net/http/pprof handlers via
			// the blank import.
			if err := http.Serve(pl, nil); err != nil {
				log.Printf("cbbserve: pprof server stopped: %v", err)
			}
		}()
	}

	eng, desc, err := buildEngine(engineConfig{
		dataset: *dataset, n: *n, seed: *seed, data: *data, file: *file,
		variant: *variant, clip: *clip, shards: *shards, bufferPool: *bufferPool,
	})
	if err != nil {
		fatal(err)
	}

	s, err := server.New(server.Config{
		Engine:           eng,
		InFlightLimit:    *inflight,
		QueueTimeout:     *queueTimeout,
		CoalesceWindow:   *coalesce,
		CoalesceMaxBatch: *coalesceMax,
		SearchWorkers:    *workers,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("cbbserve: listening on %s (%s, %d objects)", l.Addr(), desc, eng.Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
		return
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	log.Printf("cbbserve: signal received, draining (deadline %s)", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-serveErr; err != nil {
		fatal(err)
	}
	log.Printf("cbbserve: drained and closed")
}

type engineConfig struct {
	dataset    string
	n          int
	seed       int64
	data       string
	file       string
	variant    string
	clip       string
	shards     int
	bufferPool int
}

// buildEngine boots the serving engine: an existing snapshot file is opened
// as-is; otherwise objects come from -data CSV or a synthetic -dataset and
// are bulk-loaded into a fresh (optionally file-backed, optionally sharded)
// tree.
func buildEngine(cfg engineConfig) (server.Engine, string, error) {
	variant, err := parseVariant(cfg.variant)
	if err != nil {
		return nil, "", err
	}
	clip, err := parseClip(cfg.clip)
	if err != nil {
		return nil, "", err
	}

	if cfg.file != "" && cfg.shards > 0 {
		return nil, "", fmt.Errorf("-file is only supported with -shards 0 (single tree)")
	}

	// Re-opening an existing snapshot needs no dataset at all.
	if cfg.file != "" {
		if _, statErr := os.Stat(cfg.file); statErr == nil {
			tree, err := cbb.Open(cfg.file)
			if err != nil {
				return nil, "", err
			}
			if cfg.bufferPool > 0 {
				tree.AttachBufferPool(cfg.bufferPool)
			}
			return server.NewTreeEngine(tree, true), fmt.Sprintf("snapshot %s", cfg.file), nil
		}
	}

	objects, universe, desc, err := loadObjects(cfg)
	if err != nil {
		return nil, "", err
	}
	items := make([]cbb.Item, len(objects))
	for i, r := range objects {
		items[i] = cbb.Item{Object: cbb.ObjectID(i), Rect: r}
	}
	opts := cbb.Options{
		Dims:     objects[0].Dims(),
		Variant:  variant,
		Clipping: clip,
		Universe: universe,
	}

	if cfg.shards > 0 {
		st, err := cbb.NewSharded(cbb.ShardedOptions{Options: opts, Shards: cfg.shards})
		if err != nil {
			return nil, "", err
		}
		if err := st.InsertItems(items); err != nil {
			return nil, "", err
		}
		return server.NewShardedEngine(st, false),
			fmt.Sprintf("%s, %d shards", desc, cfg.shards), nil
	}

	var tree *cbb.Tree
	persistent := false
	if cfg.file != "" {
		tree, err = cbb.Create(cfg.file, opts)
		persistent = true
		desc = fmt.Sprintf("%s -> %s", desc, cfg.file)
	} else {
		tree, err = cbb.New(opts)
	}
	if err != nil {
		return nil, "", err
	}
	if err := tree.BulkLoad(items); err != nil {
		return nil, "", err
	}
	if persistent {
		if err := tree.Flush(); err != nil {
			return nil, "", err
		}
		if cfg.bufferPool > 0 {
			tree.AttachBufferPool(cfg.bufferPool)
		}
	}
	return server.NewTreeEngine(tree, persistent), desc, nil
}

// loadObjects resolves the object source: -data CSV wins, then -dataset,
// with par02 as the out-of-the-box default so `cbbserve` alone boots.
func loadObjects(cfg engineConfig) ([]cbb.Rect, cbb.Rect, string, error) {
	if cfg.data != "" {
		f, err := os.Open(cfg.data)
		if err != nil {
			return nil, cbb.Rect{}, "", err
		}
		defer f.Close()
		objects, err := datasets.ReadCSV(f)
		if err != nil {
			return nil, cbb.Rect{}, "", err
		}
		return objects, datasets.BoundingUniverse(objects), fmt.Sprintf("csv %s", cfg.data), nil
	}
	name := cfg.dataset
	if name == "" {
		name = "par02"
	}
	objects, err := datasets.Generate(name, cfg.n, cfg.seed)
	if err != nil {
		return nil, cbb.Rect{}, "", err
	}
	universe, err := datasets.Universe(name)
	if err != nil {
		return nil, cbb.Rect{}, "", err
	}
	return objects, universe, fmt.Sprintf("dataset %s seed %d", name, cfg.seed), nil
}

func parseVariant(name string) (cbb.Variant, error) {
	switch strings.ToLower(name) {
	case "qr-tree", "qr", "quadratic":
		return cbb.QRTree, nil
	case "hr-tree", "hr", "hilbert":
		return cbb.HRTree, nil
	case "r*-tree", "r*", "rstar":
		return cbb.RStarTree, nil
	case "rr*-tree", "rr*", "rrstar":
		return cbb.RRStarTree, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want qr, hr, r*, or rr*)", name)
}

func parseClip(name string) (cbb.ClipMethod, error) {
	switch strings.ToLower(name) {
	case "csta", "stairline":
		return cbb.ClipStairline, nil
	case "csky", "skyline":
		return cbb.ClipSkyline, nil
	case "none", "off":
		return cbb.ClipNone, nil
	}
	return 0, fmt.Errorf("unknown clip method %q (want csta, csky, or none)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbbserve:", err)
	os.Exit(1)
}
