package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		ns   float64
		mem  bool
	}{
		{"BenchmarkKNN-4   \t113056\t     19648 ns/op\t    1473 B/op\t       2 allocs/op", true, "BenchmarkKNN", 19648, true},
		{"BenchmarkSearchHot/dims=2/clip=none-8 \t  225891\t      9832 ns/op\t       0 B/op\t       0 allocs/op", true, "BenchmarkSearchHot/dims=2/clip=none", 9832, true},
		{"BenchmarkSnapshotAcquire \t16904930\t        71.14 ns/op", true, "BenchmarkSnapshotAcquire", 71.14, false},
		{"goos: linux", false, "", 0, false},
		{"PASS", false, "", 0, false},
		{"ok  \tcbb\t14.415s", false, "", 0, false},
		{"BenchmarkBroken\tnot-a-count\t12 ns/op", false, "", 0, false},
		{"--- FAIL: TestSomething (0.00s)", false, "", 0, false},
	}
	for _, c := range cases {
		r, ok := parseBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.Name != c.name || r.NsPerOp != c.ns || r.HasMem != c.mem {
			t.Errorf("parseBenchLine(%q) = %+v, want name %q ns %v mem %v", c.line, r, c.name, c.ns, c.mem)
		}
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkKNN-4":                         "BenchmarkKNN",
		"BenchmarkKNN":                           "BenchmarkKNN",
		"BenchmarkSearchHot/dims=2/clip=none-16": "BenchmarkSearchHot/dims=2/clip=none",
		"BenchmarkX/sub-case":                    "BenchmarkX/sub-case",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
