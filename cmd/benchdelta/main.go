// Command benchdelta compares `go test -bench` output against the recorded
// baseline in BENCH_baseline.json and prints a benchcmp-style delta table.
//
// It reads benchmark output on stdin (pipe `go test -bench ... | benchdelta`)
// and exits non-zero when the input contains a test failure, when no
// benchmark line parses, or when none of the parsed benchmarks appear in the
// baseline — so a CI smoke run at -benchtime=1x fails on build/assert errors
// and on benchmark rot (renamed or deleted benchmarks), while the printed
// deltas stay informational: single-iteration timings are noise, and the
// baseline was recorded on a different class of machine anyway.
//
//	go test -run='^$' -bench 'BenchmarkSearchHot|BenchmarkKNN' -benchmem -benchtime=1x . | benchdelta
//	go test -bench . -benchtime=1x ./internal/server | benchdelta -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark output line.
type benchResult struct {
	Name        string // with the -GOMAXPROCS suffix stripped
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	HasMem      bool
}

// baselineFile mirrors the subset of BENCH_baseline.json this tool needs.
type baselineFile struct {
	Schema     int    `json:"schema"`
	Recorded   string `json:"recorded"`
	CPU        string `json:"cpu"`
	Benchmarks []struct {
		Name        string  `json:"name"`
		Package     string  `json:"package"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// stripProcSuffix removes the trailing -N GOMAXPROCS suffix go test appends
// to benchmark names ("BenchmarkKNN-4" -> "BenchmarkKNN"). A trailing
// -<digits> that is part of a subbenchmark name is indistinguishable, but no
// benchmark in this repository names subtests that way.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseBenchLine parses one `go test -bench` output line, returning ok=false
// for non-benchmark lines (headers, PASS/ok trailers, log output).
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return benchResult{}, false // second field must be the iteration count
	}
	r := benchResult{Name: stripProcSuffix(fields[0])}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			r.BytesPerOp = v
			r.HasMem = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.HasMem = true
		}
	}
	if !seenNs {
		return benchResult{}, false
	}
	return r, true
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file to compare against")
	flag.Parse()

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: %v\n", err)
		os.Exit(1)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: parsing %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	baseByName := make(map[string]int, len(base.Benchmarks))
	for i, b := range base.Benchmarks {
		baseByName[b.Name] = i
	}

	var results []benchResult
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// go test marks failures with "--- FAIL" (per test) and a bare
		// "FAIL" trailer per package; either means the run is unusable.
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(strings.TrimSpace(line), "--- FAIL") {
			failed = true
		}
		if r, ok := parseBenchLine(line); ok {
			results = append(results, r)
		}
		fmt.Println(line) // pass the raw output through for the CI log
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchdelta: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdelta: input contains a test failure")
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdelta: no benchmark lines in input (wrong -bench pattern, or the benchmarks rotted away)")
		os.Exit(1)
	}

	matched := 0
	fmt.Printf("\ndelta vs %s (recorded %s, %s):\n", *baselinePath, base.Recorded, base.CPU)
	fmt.Printf("%-52s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, r := range results {
		i, ok := baseByName[r.Name]
		if !ok {
			fmt.Printf("%-52s %14s %14.0f %8s\n", r.Name, "(new)", r.NsPerOp, "-")
			continue
		}
		matched++
		b := base.Benchmarks[i]
		delta := "-"
		if b.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
		fmt.Printf("%-52s %14.0f %14.0f %8s\n", r.Name, b.NsPerOp, r.NsPerOp, delta)
		if r.HasMem && (r.BytesPerOp != b.BytesPerOp || r.AllocsPerOp != b.AllocsPerOp) {
			fmt.Printf("%-52s %14s %s\n", "", "",
				fmt.Sprintf("mem: %.0f B/op %.0f allocs/op (baseline %.0f B/op %.0f allocs/op)",
					r.BytesPerOp, r.AllocsPerOp, b.BytesPerOp, b.AllocsPerOp))
		}
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdelta: none of the parsed benchmarks appear in the baseline")
		os.Exit(1)
	}
	fmt.Printf("%d/%d benchmarks matched the baseline\n", matched, len(results))
}
