// Command datagen generates the synthetic stand-in datasets used by the
// evaluation harness and writes them as CSV (one object per line:
// lo1,...,lod,hi1,...,hid) to stdout or a file. It exists so that the exact
// data any experiment ran on can be exported, inspected, or fed to other
// tools.
//
// Usage:
//
//	datagen -dataset axo03 -n 100000 -seed 7 -out axons.csv
//	datagen -dataset hot02 -hotspots 4 -zipfs 2.0 -out hot.csv
//	datagen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"cbb/internal/datasets"
	"cbb/internal/geom"
)

func main() {
	var (
		name     = flag.String("dataset", "par02", "dataset to generate")
		n        = flag.Int("n", 0, "number of objects (0 = dataset default)")
		seed     = flag.Int64("seed", 42, "random seed")
		out      = flag.String("out", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list available datasets and exit")
		chunk    = flag.Int("chunk", 0, "generate and write in chunks of this many objects, so datasets larger than RAM stream straight to the output (0 = materialise everything first; note a chunked run emits a different — still deterministic — object sequence)")
		hotspots = flag.Int("hotspots", 0, "hot02/hot03 only: number of hot regions (0 = default)")
		zipfs    = flag.Float64("zipfs", 0, "hot02/hot03 only: zipf exponent weighting the hot regions, > 1 (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, s := range datasets.Specs {
			fmt.Printf("%-6s %dd  default %8d  paper %8d  %s\n",
				s.Name, s.Dims, s.DefaultSize, s.PaperSize, s.Description)
		}
		return
	}

	if *chunk > 0 && (*hotspots != 0 || *zipfs != 0) {
		fatal(fmt.Errorf("-chunk cannot be combined with -hotspots/-zipfs"))
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	written := 0
	emit := func(objs []geom.Rect) error {
		for _, o := range objs {
			line := make([]byte, 0, 128)
			for i, v := range o.Lo {
				if i > 0 {
					line = append(line, ',')
				}
				line = strconv.AppendFloat(line, v, 'g', -1, 64)
			}
			for _, v := range o.Hi {
				line = append(line, ',')
				line = strconv.AppendFloat(line, v, 'g', -1, 64)
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
		written += len(objs)
		return nil
	}

	var err error
	switch {
	case *chunk > 0:
		err = datasets.GenerateStream(*name, *n, *seed, *chunk, emit)
	case *hotspots != 0 || *zipfs != 0:
		var objs []geom.Rect
		objs, err = datasets.GenerateHot(*name, *n, *seed, datasets.HotParams{Hotspots: *hotspots, ZipfS: *zipfs})
		if err == nil {
			err = emit(objs)
		}
	default:
		var objs []geom.Rect
		objs, err = datasets.Generate(*name, *n, *seed)
		if err == nil {
			err = emit(objs)
		}
	}
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d objects of %s to %s\n", written, *name, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
