// Command cbbinspect builds a (clipped) R-tree over one of the synthetic
// datasets — or, with -file, loads a previously saved snapshot — and prints
// its structural statistics: height, node counts, occupancy, dead space,
// clip-point counts and storage breakdown. It also verifies the structural
// invariants of the tree and the soundness of every clip point, making it a
// quick health check for the index implementation and for snapshot files.
//
// Usage:
//
//	cbbinspect -dataset axo03 -n 50000 -variant RR*-tree -clip CSTA
//	cbbinspect -file index.cbb
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/experiments"
	"cbb/internal/metrics"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

func main() {
	var (
		name    = flag.String("dataset", "rea02", "dataset to index")
		n       = flag.Int("n", 20000, "number of objects")
		seed    = flag.Int64("seed", 42, "random seed")
		variant = flag.String("variant", "RR*-tree", "R-tree variant (QR-tree, HR-tree, R*-tree, RR*-tree)")
		clip    = flag.String("clip", "CSTA", "clipping method (CSKY, CSTA, none)")
		k       = flag.Int("k", 0, "max clip points per node (0 = 2^(d+1))")
		tau     = flag.Float64("tau", 0.025, "clip-point volume threshold")
		samples = flag.Int("samples", 256, "Monte-Carlo samples per node")
		file    = flag.String("file", "", "inspect a snapshot file instead of building an index")
		verify  = flag.Bool("verify", false, "with -file: walk the free-page list and WAL tail, report orphaned or doubly-referenced pages")
		rewrite = flag.String("rewrite", "", "with -file: transcode the snapshot to the given format (v1 or v2) and exit")
		out     = flag.String("out", "", "with -rewrite/-compact: output path (default: rewrite the file in place)")
		compact = flag.Bool("compact", false, "with -file: rewrite the snapshot in its current format (dense page layout, WAL folded in) and exit")
	)
	flag.Parse()

	if (*rewrite != "" || *compact) && *file == "" {
		fatal(fmt.Errorf("-rewrite and -compact require -file"))
	}
	if *rewrite != "" || *compact {
		if err := transcodeSnapshot(*file, *out, *rewrite, *compact); err != nil {
			fatal(err)
		}
		return
	}
	if *file != "" {
		if err := inspectSnapshot(*file, *samples, *seed, *verify); err != nil {
			fatal(err)
		}
		return
	}
	if *verify {
		fatal(fmt.Errorf("-verify requires -file"))
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	cfg := experiments.Config{Scale: *n, Seed: *seed, SamplesPerNode: *samples, Tau: *tau}
	ds, err := cfg.WithDefaults().LoadDataset(*name)
	if err != nil {
		fatal(err)
	}
	tree, buildTime, err := experiments.BuildTree(ds, v)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset    : %s (%d objects, %dd)\n", *name, len(ds.Items), ds.Spec.Dims)
	fmt.Printf("variant    : %s (built in %s)\n", v, buildTime.Round(1e6))

	method, enabled := parseClip(*clip)
	var idx *clipindex.Index
	if enabled {
		kk := *k
		if kk == 0 {
			kk = 1 << uint(ds.Spec.Dims+1)
		}
		idx, err = clipindex.New(tree, core.Params{K: kk, Tau: *tau, Method: method})
		if err != nil {
			fatal(err)
		}
	}
	if err := inspectTree(tree, idx, *samples, *seed); err != nil {
		fatal(err)
	}
}

// inspectSnapshot loads a snapshot file and runs the same inspection as the
// build path, so a shipped index file gets the full health check without a
// rebuild. With verify it additionally audits the page file itself: every
// in-use page must be referenced exactly once (superblock, node page, node
// index, or clip table), the free-page list must be disjoint from the
// referenced set, and a leftover write-ahead log is decoded and reported.
//
// The file is opened strictly read-only: inspection never modifies the
// snapshot, and a pending write-ahead log is reported — and replayed only
// into memory, so reads see the committed state — but never consumed.
// (Previously the inspector opened read-write, which replayed and deleted a
// pending WAL as a side effect of merely looking at the file.)
func inspectSnapshot(path string, samples int, seed int64, verify bool) error {
	walState := describeWAL(storage.WALPathFor(path))
	snap, fp, err := snapshot.OpenFileReadOnly(path)
	if err != nil {
		return err
	}
	defer fp.Close()
	tree, err := snap.LoadTree(fp)
	if err != nil {
		return err
	}
	m := snap.Meta
	fmt.Printf("snapshot   : %s (format v%d, %d B pages)\n", path, m.Format, m.PageSize)
	fmt.Printf("contents   : %d objects, %dd, M=%d m=%d\n", m.Objects, m.Dims, m.MaxEntries, m.MinEntries)
	fmt.Printf("variant    : %s\n", m.Variant)
	if err := reportCompression(path, snap, fp, tree); err != nil {
		return err
	}
	var idx *clipindex.Index
	if params, ok := m.ClipParams(); ok {
		idx, err = clipindex.Restore(tree, params, snap.Table)
		if err != nil {
			return err
		}
	}
	if err := inspectTree(tree, idx, samples, seed); err != nil {
		return err
	}
	if verify {
		return verifyFile(snap, fp, walState)
	}
	return nil
}

// transcodeSnapshot implements -rewrite/-compact: a streaming format
// conversion (or same-format compaction) via snapshot.Transcode.
func transcodeSnapshot(path, out, format string, compact bool) error {
	var target int
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "":
		if !compact {
			return fmt.Errorf("-rewrite needs a format (v1 or v2)")
		}
		snap, fp, err := snapshot.OpenFileReadOnly(path)
		if err != nil {
			return err
		}
		target = snap.Meta.Format
		fp.Close()
	case "v1", "1":
		target = snapshot.FormatV1
	case "v2", "2":
		target = snapshot.FormatV2
	default:
		return fmt.Errorf("unknown format %q (want v1 or v2)", format)
	}
	if out == "" {
		out = path
	}
	before, err := os.Stat(path)
	if err != nil {
		return err
	}
	if err := snapshot.Transcode(path, out, target); err != nil {
		return err
	}
	after, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("transcoded : %s (%d B) -> %s (format v%d, %d B, %.1f%%)\n",
		path, before.Size(), out, target, after.Size(), 100*float64(after.Size())/float64(before.Size()))
	return nil
}

// reportCompression prints the per-level storage breakdown of a snapshot
// file: node counts, encoded payload bytes (every node page is read back and
// CRC-verified in the process), and — for compressed snapshots — the raw-leaf
// fallback count, quantisation width, and a histogram of the conservative
// slack that directory-rectangle quantisation added (measured against each
// child's exact MBB, as relative margin increase).
func reportCompression(path string, snap *snapshot.Snapshot, fp *storage.FilePager, tree *rtree.Tree) error {
	if len(snap.Pages) == 0 {
		return nil
	}
	codec := snap.Meta.Codec()
	type lvl struct {
		nodes, entries, rawLeaves int
		bytes                     int64
	}
	levels := map[int]*lvl{}
	maxLevel := 0
	for _, pid := range snap.Pages {
		buf, _, err := fp.Read(pid)
		if err != nil {
			return fmt.Errorf("reading node page %d: %w", pid, err)
		}
		st, err := rtree.InspectNodePage(buf, snap.Meta.Dims, codec)
		if err != nil {
			return fmt.Errorf("decoding node page %d: %w", pid, err)
		}
		l := levels[st.Level]
		if l == nil {
			l = &lvl{}
			levels[st.Level] = l
		}
		l.nodes++
		l.entries += st.Entries
		l.bytes += int64(st.Bytes)
		if st.RawLeaf {
			l.rawLeaves++
		}
		if st.Level > maxLevel {
			maxLevel = st.Level
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if snap.Meta.Objects > 0 {
		fmt.Printf("file size  : %d B (%.1f B/object)\n", fi.Size(), float64(fi.Size())/float64(snap.Meta.Objects))
	}
	// In-memory filter layer per level: every faulted node carries packed
	// PlaneBits-wide SoA planes alongside its exact rects (see
	// internal/rtree/quant.go), so the resident footprint per level is the
	// encoded page bytes plus these plane bytes.
	planeBytes := map[int]int{}
	tree.Walk(func(info rtree.NodeInfo) { planeBytes[info.Level] += info.PlaneBytes })
	for level := maxLevel; level >= 0; level-- {
		l := levels[level]
		if l == nil {
			continue
		}
		line := fmt.Sprintf("level %-2d   : %d nodes, %d entries, %d B encoded (%.1f B/entry)",
			level, l.nodes, l.entries, l.bytes, float64(l.bytes)/float64(max(l.entries, 1)))
		if codec == rtree.CodecV2 {
			if level == 0 && l.rawLeaves > 0 {
				line += fmt.Sprintf(", %d raw-fallback leaves", l.rawLeaves)
			}
			if level > 0 {
				line += fmt.Sprintf(", %d-bit quantised", rtree.DirQuantBits)
			}
		}
		line += fmt.Sprintf(", %d-bit planes %d B in-mem", rtree.PlaneBits, planeBytes[level])
		fmt.Println(line)
	}
	if codec == rtree.CodecV2 {
		reportSlack(tree)
	}
	return nil
}

// reportSlack histograms the conservative expansion of quantised directory
// rectangles: for every directory entry, the relative margin increase of the
// decoded rectangle over the child's exact MBB.
func reportSlack(tree *rtree.Tree) {
	// Buckets: exact, <1e-9, <1e-6, <1e-3, >=1e-3 relative margin slack.
	var buckets [5]int
	total := 0
	tree.Walk(func(info rtree.NodeInfo) {
		if info.Leaf {
			return
		}
		for _, e := range info.Children {
			child, err := tree.Node(e.Child)
			if err != nil {
				continue
			}
			total++
			pm, cm := e.Rect.Margin(), child.MBB.Margin()
			var rel float64
			if cm > 0 {
				rel = (pm - cm) / cm
			} else if pm > 0 {
				rel = 1 // degenerate child (a point); any expansion is "large"
			}
			switch {
			case rel <= 0:
				buckets[0]++
			case rel < 1e-9:
				buckets[1]++
			case rel < 1e-6:
				buckets[2]++
			case rel < 1e-3:
				buckets[3]++
			default:
				buckets[4]++
			}
		}
	})
	if total == 0 {
		return
	}
	fmt.Printf("quant slack: %d dir entries: %.1f%% exact, %.1f%% <1e-9, %.1f%% <1e-6, %.1f%% <1e-3, %.1f%% larger (relative margin)\n",
		total,
		100*float64(buckets[0])/float64(total), 100*float64(buckets[1])/float64(total),
		100*float64(buckets[2])/float64(total), 100*float64(buckets[3])/float64(total),
		100*float64(buckets[4])/float64(total))
}

// describeWAL summarises the state of a write-ahead log file at path.
func describeWAL(walPath string) string {
	info, err := storage.ReadWALFile(walPath)
	switch {
	case err == nil:
		return fmt.Sprintf("committed transaction pending replay (%d page records, %d slots; inspection reads the committed state, the log is left for the next writable open)", len(info.Records), info.SlotCount)
	case os.IsNotExist(err):
		return "none (clean shutdown)"
	case errors.Is(err, storage.ErrWALTorn):
		return "torn (interrupted before commit; will be discarded by the next writable open)"
	default:
		return fmt.Sprintf("invalid: %v", err)
	}
}

// verifyFile walks the page file's slot directory against the snapshot's
// page accounting: the superblock, every node page, and the chunked node
// index and clip table regions. Every in-use page must be referenced exactly
// once; every referenced page must be in use; everything else must be on the
// free-page list. Violations are listed and reported as an error.
func verifyFile(snap *snapshot.Snapshot, fp *storage.FilePager, walState string) error {
	refs := make(map[storage.PageID]int)
	refs[snapshot.SuperPage]++
	for _, pid := range snap.Pages {
		refs[pid]++
	}
	lay := snap.Layout
	for i := 0; i < lay.IndexPages; i++ {
		refs[lay.IndexFirst+storage.PageID(i)]++
	}
	for i := 0; i < lay.ClipPages; i++ {
		refs[lay.ClipFirst+storage.PageID(i)]++
	}
	slots, err := fp.Slots()
	if err != nil {
		return err
	}
	var orphaned, doubly, freeRef, missing []storage.PageID
	freePages := 0
	for _, s := range slots {
		n := refs[s.ID]
		switch {
		case s.InUse && n == 0:
			orphaned = append(orphaned, s.ID)
		case s.InUse && n > 1:
			doubly = append(doubly, s.ID)
		case !s.InUse && n > 0:
			freeRef = append(freeRef, s.ID)
		}
		if !s.InUse {
			freePages++
		}
	}
	for pid, n := range refs {
		if pid < 1 || int(pid) > len(slots) {
			missing = append(missing, pid)
			_ = n
		}
	}
	fmt.Printf("page file  : %d slots, %d in use, %d on the free-page list\n", len(slots), len(slots)-freePages, freePages)
	fmt.Printf("WAL tail   : %s\n", walState)
	problems := 0
	report := func(label string, ids []storage.PageID) {
		if len(ids) == 0 {
			return
		}
		problems += len(ids)
		if len(ids) > 8 {
			fmt.Printf("verify     : %d %s pages (first 8: %v)\n", len(ids), label, ids[:8])
		} else {
			fmt.Printf("verify     : %s pages: %v\n", label, ids)
		}
	}
	report("orphaned (in use but unreferenced)", orphaned)
	report("doubly-referenced", doubly)
	report("referenced-but-free", freeRef)
	report("referenced-but-missing", missing)
	if problems > 0 {
		return fmt.Errorf("page file verification found %d problem pages", problems)
	}
	fmt.Println("verify     : free-page list and page references consistent")
	return nil
}

// inspectTree prints structure, dead space, clipping, and storage breakdown
// for a tree with an optional clip index, validating both along the way.
func inspectTree(tree *rtree.Tree, idx *clipindex.Index, samples int, seed int64) error {
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("tree invariants violated: %w", err)
	}
	stats := tree.Stats()
	fmt.Printf("height     : %d\n", stats.Height)
	fmt.Printf("nodes      : %d directory, %d leaf\n", stats.DirNodes, stats.LeafNodes)
	fmt.Printf("occupancy  : %.1f%% leaf, %.1f%% directory\n", 100*stats.AvgLeafOcc, 100*stats.AvgDirOcc)

	node := metrics.TreeNodeStats(tree, samples, seed)
	fmt.Printf("overlap    : %.1f%% of node volume covered by 2+ children\n", 100*node.AvgOverlap)
	fmt.Printf("dead space : %.1f%% of node volume (%.1f%% at leaves)\n", 100*node.AvgDeadSpace, 100*node.AvgLeafDeadSpace)

	// The clip-table footprint below comes from clipindex.TableBytes (via
	// AuxBytes), the same helper behind the public Stats.ClipTableBytes, so
	// the inspector can never disagree with the library's own accounting.
	clipBytes := 0
	if idx == nil {
		fmt.Println("clipping   : disabled")
	} else {
		if err := idx.Validate(); err != nil {
			return fmt.Errorf("clip table invalid: %w", err)
		}
		cs := metrics.ClippedDeadSpace(idx, samples, seed)
		params := idx.Params()
		clipBytes = idx.AuxBytes()
		fmt.Printf("clipping   : %s, k=%d, tau=%.3f\n", params.Method, params.K, params.Tau)
		fmt.Printf("clip points: %d total, %.1f per clipped node, %d bytes\n",
			idx.Table().ClipPointCount(), idx.Table().AvgClipPointsPerNode(), clipBytes)
		fmt.Printf("clipped    : %.1f%% of node volume (%.1f%% of the dead space)\n",
			100*cs.AvgClipped, 100*cs.ClippedShareOfDead)
	}

	if tree.Len() == 0 {
		fmt.Println("storage    : empty tree, no pages")
	} else {
		pager := storage.NewPager(storage.DefaultPageSize)
		if _, _, err := tree.Save(pager); err != nil {
			return err
		}
		u := pager.Usage()
		fmt.Printf("storage    : %d dir B, %d leaf B, %d clip B (%.2f%% overhead)\n",
			u.Bytes[storage.KindDirectory], u.Bytes[storage.KindLeaf], clipBytes,
			100*float64(clipBytes)/float64(u.TotalBytes+clipBytes))
	}
	fmt.Println("status     : all invariants hold")
	return nil
}

func parseVariant(s string) (rtree.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "qr-tree", "qr", "quadratic":
		return rtree.Quadratic, nil
	case "hr-tree", "hr", "hilbert":
		return rtree.Hilbert, nil
	case "r*-tree", "r*", "rstar":
		return rtree.RStar, nil
	case "rr*-tree", "rr*", "rrstar":
		return rtree.RRStar, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", s)
	}
}

func parseClip(s string) (core.Method, bool) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "CSKY", "SKYLINE", "SKY":
		return core.MethodSkyline, true
	case "CSTA", "STAIRLINE", "STA":
		return core.MethodStairline, true
	default:
		return 0, false
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbbinspect:", err)
	os.Exit(1)
}
