// Command cbbload is an open-loop load generator for cbbserve. It replays
// internal/querygen range queries (mixed with inserts) against a running
// server at a target arrival rate: requests are scheduled on a fixed clock
// regardless of completions, so latency includes queue delay and the report
// reflects what clients of a saturated server actually experience — a
// closed-loop generator would hide that by slowing down with the server.
//
// Every response's pinned epoch vector is checked for consistency: it must
// be non-empty, and a worker's sequential requests must observe
// monotonically non-decreasing epochs. Violations are counted and, with
// -strict, fail the run.
//
// Example (against `cbbserve -dataset par02 -n 20000`):
//
//	cbbload -addr http://127.0.0.1:8089 -duration 10s -qps 500 -mix 0.9
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbb/internal/datasets"
	"cbb/internal/geom"
	"cbb/internal/querygen"
	"cbb/internal/server"
	"cbb/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8089", "cbbserve base URL")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		qps      = flag.Float64("qps", 500, "target arrival rate (requests/second, open loop)")
		workers  = flag.Int("workers", 64, "max concurrent requests")
		mix      = flag.Float64("mix", 0.9, "read fraction (rest are inserts)")
		profile  = flag.String("profile", "qr1", "query profile (qr0, qr1, qr2)")

		dataset = flag.String("dataset", "par02", "dataset the server was loaded with (calibrates queries and inserts)")
		n       = flag.Int("n", 0, "dataset object count (0 = dataset default)")
		seed    = flag.Int64("seed", 42, "dataset seed; the query stream derives from it deterministically")
		data    = flag.String("data", "", "CSV object file the server was loaded with (overrides -dataset)")

		countOnly = flag.Bool("count-only", true, "ask for match counts instead of full result items")
		idBase    = flag.Int64("id-base", 1_000_000_000, "first object ID for generated inserts")
		strict    = flag.Bool("strict", false, "exit non-zero on any error or consistency violation")
	)
	flag.Parse()

	prof, err := parseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	if *qps <= 0 || *duration <= 0 || *workers < 1 || *mix < 0 || *mix > 1 {
		fatal(fmt.Errorf("need -qps > 0, -duration > 0, -workers >= 1, -mix in [0,1]"))
	}

	objects, universe, err := loadObjects(*data, *dataset, *n, *seed)
	if err != nil {
		fatal(err)
	}
	jobs, err := buildSchedule(objects, universe, scheduleConfig{
		qps: *qps, duration: *duration, mix: *mix, profile: prof,
		seed: *seed, idBase: *idBase, countOnly: *countOnly,
	})
	if err != nil {
		fatal(err)
	}

	res := run(*addr, jobs, *workers)

	shed, scrapeErr := scrapeShed(*addr)
	report(os.Stdout, *qps, *duration, res, shed, scrapeErr)

	if *strict && (res.errors.Load() > 0 || res.violations.Load() > 0) {
		os.Exit(1)
	}
}

// job is one scheduled request. Latency is measured from `at`, the intended
// start time, not from when a worker got around to sending it.
type job struct {
	at    time.Duration // offset from run start
	write bool
	body  []byte // pre-marshaled request body
}

type scheduleConfig struct {
	qps       float64
	duration  time.Duration
	mix       float64
	profile   querygen.Profile
	seed      int64
	idBase    int64
	countOnly bool
}

// buildSchedule pre-generates the full open-loop arrival plan: uniform
// arrivals at the target rate, each slot independently chosen read/write
// from a seeded rng so the stream is reproducible run to run.
func buildSchedule(objects []geom.Rect, universe geom.Rect, cfg scheduleConfig) ([]job, error) {
	total := int(cfg.qps * cfg.duration.Seconds())
	if total < 1 {
		total = 1
	}
	const maxJobs = 4 << 20
	if total > maxJobs {
		return nil, fmt.Errorf("schedule of %d requests exceeds the %d cap; lower -qps or -duration", total, maxJobs)
	}
	gen, err := querygen.New(objects, universe, cfg.seed)
	if err != nil {
		return nil, err
	}
	interval := time.Duration(float64(time.Second) / cfg.qps)
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	insertRng := rand.New(rand.NewSource(cfg.seed + 2))
	nextID := cfg.idBase

	jobs := make([]job, total)
	for i := range jobs {
		jobs[i].at = time.Duration(i) * interval
		if rng.Float64() < cfg.mix {
			q := gen.Query(cfg.profile)
			body, err := json.Marshal(server.SearchRequest{
				Query:     server.RectJSON{Lo: q.Lo, Hi: q.Hi},
				CountOnly: cfg.countOnly,
			})
			if err != nil {
				return nil, err
			}
			jobs[i].body = body
			continue
		}
		// Inserts clone existing objects at fresh IDs, so write load has the
		// same spatial distribution as the dataset.
		src := objects[insertRng.Intn(len(objects))]
		body, err := json.Marshal(server.InsertRequest{
			ID:   nextID,
			Rect: server.RectJSON{Lo: src.Lo, Hi: src.Hi},
		})
		if err != nil {
			return nil, err
		}
		jobs[i].write = true
		jobs[i].body = body
		nextID++
	}
	return jobs, nil
}

type result struct {
	sent       atomic.Int64
	ok         atomic.Int64
	shed       atomic.Int64 // 429 responses
	errors     atomic.Int64 // transport errors + non-2xx/429 statuses
	violations atomic.Int64 // epoch-consistency violations
	readLat    *telemetry.Histogram
	writeLat   *telemetry.Histogram
	elapsed    time.Duration
}

// epochResponse is the slice of any data-plane response cbbload checks.
type epochResponse struct {
	Epochs []uint64 `json:"epochs"`
}

// run dispatches the schedule on its clock and drains it with a bounded
// worker pool. The jobs channel holds the entire schedule, so a slow server
// delays completions, never arrivals.
func run(addr string, jobs []job, workers int) *result {
	res := &result{
		// Zero-value histograms, observed in microseconds (the telemetry
		// buckets are unit-agnostic).
		readLat:  new(telemetry.Histogram),
		writeLat: new(telemetry.Histogram),
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        workers,
			MaxIdleConnsPerHost: workers,
		},
		Timeout: 30 * time.Second,
	}

	ch := make(chan job, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A worker's requests are sequential, so the server guarantees
			// its observed epochs never go backwards; lastEpochs is the
			// running baseline (reset when the shard count changes).
			var lastEpochs []uint64
			for j := range ch {
				lastEpochs = res.execute(client, addr, j, start, lastEpochs)
			}
		}()
	}
	for _, j := range jobs {
		if d := time.Until(start.Add(j.at)); d > 0 {
			time.Sleep(d)
		}
		res.sent.Add(1)
		ch <- j
	}
	close(ch)
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

func (res *result) execute(client *http.Client, addr string, j job, start time.Time, lastEpochs []uint64) []uint64 {
	endpoint, hist := "/search", res.readLat
	if j.write {
		endpoint, hist = "/insert", res.writeLat
	}
	resp, err := client.Post(addr+endpoint, "application/json", bytes.NewReader(j.body))
	if err != nil {
		res.errors.Add(1)
		return lastEpochs
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	latency := time.Since(start.Add(j.at))

	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		res.shed.Add(1)
		return lastEpochs
	case resp.StatusCode != http.StatusOK || readErr != nil:
		res.errors.Add(1)
		return lastEpochs
	}
	hist.Observe(latency.Microseconds())
	res.ok.Add(1)

	var er epochResponse
	if err := json.Unmarshal(body, &er); err != nil || len(er.Epochs) == 0 {
		// Every successful data-plane response must carry the pinned
		// snapshot's epoch vector.
		res.violations.Add(1)
		return lastEpochs
	}
	if len(er.Epochs) == len(lastEpochs) {
		for i, e := range er.Epochs {
			if e < lastEpochs[i] {
				res.violations.Add(1)
				return lastEpochs
			}
		}
	}
	return er.Epochs
}

// scrapeShed pulls the server-side shed counter from /metrics, so the
// report shows shedding as the server counted it, not just as 429s the
// client happened to see.
func scrapeShed(addr string) (float64, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "cbbserve_shed_total ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, "cbbserve_shed_total ")), 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("cbbserve_shed_total not found in /metrics")
}

func report(w io.Writer, qps float64, duration time.Duration, res *result, shed float64, scrapeErr error) {
	fmt.Fprintf(w, "cbbload report\n")
	fmt.Fprintf(w, "  target    %8.0f req/s for %s\n", qps, duration)
	fmt.Fprintf(w, "  achieved  %8.0f req/s (%d ok in %.2fs)\n",
		float64(res.ok.Load())/res.elapsed.Seconds(), res.ok.Load(), res.elapsed.Seconds())
	fmt.Fprintf(w, "  sent %d  ok %d  shed %d  errors %d  epoch violations %d\n",
		res.sent.Load(), res.ok.Load(), res.shed.Load(), res.errors.Load(), res.violations.Load())
	printLatency(w, "read ", res.readLat)
	printLatency(w, "write", res.writeLat)
	if scrapeErr != nil {
		fmt.Fprintf(w, "  server shed (/metrics): unavailable: %v\n", scrapeErr)
	} else {
		fmt.Fprintf(w, "  server shed (/metrics): %.0f\n", shed)
	}
}

func printLatency(w io.Writer, name string, h *telemetry.Histogram) {
	s := h.Summarize()
	if s.Count == 0 {
		fmt.Fprintf(w, "  %s     (no requests)\n", name)
		return
	}
	ms := func(us int64) float64 { return float64(us) / 1000 }
	fmt.Fprintf(w, "  %s p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms  (%d reqs)\n",
		name, ms(s.P50), ms(s.P95), ms(s.P99), ms(s.Max), s.Count)
}

func loadObjects(data, dataset string, n int, seed int64) ([]geom.Rect, geom.Rect, error) {
	if data != "" {
		f, err := os.Open(data)
		if err != nil {
			return nil, geom.Rect{}, err
		}
		defer f.Close()
		objects, err := datasets.ReadCSV(f)
		if err != nil {
			return nil, geom.Rect{}, err
		}
		return objects, datasets.BoundingUniverse(objects), nil
	}
	objects, err := datasets.Generate(dataset, n, seed)
	if err != nil {
		return nil, geom.Rect{}, err
	}
	universe, err := datasets.Universe(dataset)
	if err != nil {
		return nil, geom.Rect{}, err
	}
	return objects, universe, nil
}

func parseProfile(name string) (querygen.Profile, error) {
	switch strings.ToLower(name) {
	case "qr0":
		return querygen.QR0, nil
	case "qr1":
		return querygen.QR1, nil
	case "qr2":
		return querygen.QR2, nil
	}
	return 0, fmt.Errorf("unknown profile %q (want qr0, qr1, or qr2)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbbload:", err)
	os.Exit(1)
}
