package cbb

import (
	"errors"

	"cbb/internal/join"
	"cbb/internal/rtree"
)

// Sharded spatial joins: each shard contributes one epoch-consistent
// join.Side, and because every object lives in exactly one shard, the union
// over sides (INLJ) or over the cross product of bounds-intersecting shard
// pairs (STT) produces each intersecting pair exactly once — the result set
// equals the unsharded join's. Reported I/O legitimately differs from the
// single-tree join: the trees are smaller and the directory-level shard
// skip is free.

// sides returns one bound join input per pinned shard view.
func (sv *ShardedView) sides() []join.Side {
	out := make([]join.Side, len(sv.views))
	for i, v := range sv.views {
		out[i] = v.side()
	}
	return out
}

// IndexNestedLoopJoinSharded joins a sharded index with a set of probe
// items: every probe is run as a range query against each shard whose
// bounds it intersects, at one internally acquired ShardedView. The
// optional visit callback receives every matching pair; pass nil to only
// count.
func IndexNestedLoopJoinSharded(indexed *ShardedTree, probes []Item, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if indexed == nil {
		return JoinResult{}, errors.New("cbb: IndexNestedLoopJoinSharded requires an indexed sharded tree")
	}
	v := indexed.Snapshot()
	defer v.Close()
	return IndexNestedLoopJoinShardedView(v, probes, opts, visit)
}

// IndexNestedLoopJoinShardedView is IndexNestedLoopJoinSharded against an
// explicitly pinned sharded view: the whole join runs at the view's epochs
// regardless of concurrent writers.
func IndexNestedLoopJoinShardedView(indexed *ShardedView, probes []Item, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if indexed == nil {
		return JoinResult{}, errors.New("cbb: IndexNestedLoopJoinShardedView requires a sharded view")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	res, err := join.PINLJSides(indexed.sides(), probes, opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}

// SynchronizedTreeTraversalJoinSharded joins two sharded indexes by
// synchronized traversal over every bounds-intersecting pair of shards, at
// one internally acquired ShardedView per input.
func SynchronizedTreeTraversalJoinSharded(left, right *ShardedTree, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if left == nil || right == nil {
		return JoinResult{}, errors.New("cbb: SynchronizedTreeTraversalJoinSharded requires two sharded trees")
	}
	lv := left.Snapshot()
	defer lv.Close()
	rv := right.Snapshot()
	defer rv.Close()
	return SynchronizedTreeTraversalJoinShardedViews(lv, rv, opts, visit)
}

// SynchronizedTreeTraversalJoinShardedViews is the view-based sharded STT
// join: the admissible shard pairs (those whose pinned bounds intersect)
// are partitioned over the workers, and each pair runs the same clipped
// synchronized traversal as the single-tree join at the views' epochs.
func SynchronizedTreeTraversalJoinShardedViews(left, right *ShardedView, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if left == nil || right == nil {
		return JoinResult{}, errors.New("cbb: SynchronizedTreeTraversalJoinShardedViews requires two sharded views")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	var pairs []join.SidePair
	for _, lv := range left.views {
		if lv.v.RootID() == rtree.InvalidNode {
			continue
		}
		lb := lv.Bounds()
		for _, rv := range right.views {
			if rv.v.RootID() == rtree.InvalidNode || !lb.Intersects(rv.Bounds()) {
				continue
			}
			pairs = append(pairs, join.SidePair{Left: lv.side(), Right: rv.side()})
		}
	}
	res, err := join.PSTTSidePairs(pairs, opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}
